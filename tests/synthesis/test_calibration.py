"""Consistency tests for the published reference data."""

from __future__ import annotations

import pytest

from repro.synthesis.calibration import (
    PAPER_ARCHITECTURE_ORDER,
    PAPER_HEADLINE,
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE4,
    PAPER_TABLE5,
    paper_kernel_names,
    paper_performance_cell,
)


def test_table1_component_ratios_are_relative_to_pe():
    pe = PAPER_TABLE1["PE"]
    for name, row in PAPER_TABLE1.items():
        if name == "PE":
            continue
        assert row.area_ratio_percent == pytest.approx(100 * row.area_slices / pe.area_slices, abs=0.2)
    # The printed delay ratios are consistent with delay/PE-delay for the ALU
    # and the multiplier; the multiplexer and shift-logic rows of the paper do
    # not follow that formula (recorded verbatim, flagged in EXPERIMENTS.md).
    for name in ("ALU", "Array multiplier"):
        row = PAPER_TABLE1[name]
        assert row.delay_ratio_percent == pytest.approx(100 * row.delay_ns / pe.delay_ns, abs=0.2)


def test_table2_covers_all_nine_architectures():
    assert set(PAPER_TABLE2) == set(PAPER_ARCHITECTURE_ORDER)
    assert PAPER_TABLE2["Base"].area_reduction_percent == 0.0


def test_table2_headline_area_reduction():
    best = max(row.area_reduction_percent for row in PAPER_TABLE2.values())
    assert best == pytest.approx(PAPER_HEADLINE["max_area_reduction_percent"])


def test_table2_headline_delay_reduction():
    best = max(row.delay_reduction_percent for row in PAPER_TABLE2.values())
    assert best == pytest.approx(PAPER_HEADLINE["max_delay_reduction_percent"])


def test_tables45_headline_performance():
    best = 0.0
    for table in (PAPER_TABLE4, PAPER_TABLE5):
        for cells in table.values():
            for architecture, cell in cells.items():
                if architecture != "Base":
                    best = max(best, cell.delay_reduction_percent)
    assert best == pytest.approx(PAPER_HEADLINE["max_performance_improvement_percent"])


def test_every_kernel_row_covers_all_architectures():
    for table in (PAPER_TABLE4, PAPER_TABLE5):
        for kernel, cells in table.items():
            assert set(cells) == set(PAPER_ARCHITECTURE_ORDER), kernel
            assert cells["Base"].stalls is None
            assert cells["Base"].delay_reduction_percent == 0.0


def test_execution_time_consistent_with_cycles_and_table2_delay():
    """ET = cycles x critical path: holds for the published numbers."""
    for table in (PAPER_TABLE4, PAPER_TABLE5):
        for kernel, cells in table.items():
            for architecture, cell in cells.items():
                period = PAPER_TABLE2[architecture].array_delay_ns
                assert cell.execution_time_ns == pytest.approx(cell.cycles * period, rel=0.01), (
                    kernel,
                    architecture,
                )


def test_rsp2_supports_every_kernel_without_stall():
    """The paper's key observation: RSP#2 runs every kernel stall-free."""
    for table in (PAPER_TABLE4, PAPER_TABLE5):
        for cells in table.values():
            assert cells["RSP#2"].stalls == 0


def test_paper_performance_cell_lookup():
    cell = paper_performance_cell("SAD", "RSP#1")
    assert cell.delay_reduction_percent == pytest.approx(35.7)
    assert set(paper_kernel_names()) == set(PAPER_TABLE4) | set(PAPER_TABLE5)
