"""Tests for the functional-unit arithmetic behaviour."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.ir import OpType
from repro.sim.functional_units import FunctionalUnitBehaviour


@pytest.fixture
def behaviour():
    return FunctionalUnitBehaviour(width_bits=16, wrap=False)


@pytest.fixture
def wrapping():
    return FunctionalUnitBehaviour(width_bits=16, wrap=True)


def test_basic_arithmetic(behaviour):
    assert behaviour.execute(OpType.ADD, [3, 4]) == 7
    assert behaviour.execute(OpType.SUB, [3, 4]) == -1
    assert behaviour.execute(OpType.MUL, [6, 7]) == 42
    assert behaviour.execute(OpType.ABS, [-9]) == 9
    assert behaviour.execute(OpType.MIN, [2, 5]) == 2
    assert behaviour.execute(OpType.MAX, [2, 5]) == 5
    assert behaviour.execute(OpType.MOV, [11]) == 11


def test_logical_operations(behaviour):
    assert behaviour.execute(OpType.AND, [0b1100, 0b1010]) == 0b1000
    assert behaviour.execute(OpType.OR, [0b1100, 0b1010]) == 0b1110
    assert behaviour.execute(OpType.XOR, [0b1100, 0b1010]) == 0b0110


def test_shift_directions(behaviour):
    assert behaviour.execute(OpType.SHIFT, [3], immediate=2) == 12
    assert behaviour.execute(OpType.SHIFT, [12], immediate=-2) == 3


def test_shift_requires_immediate(behaviour):
    with pytest.raises(SimulationError):
        behaviour.execute(OpType.SHIFT, [3])


def test_const_uses_immediate(behaviour):
    assert behaviour.execute(OpType.CONST, [], immediate=5) == 5
    with pytest.raises(SimulationError):
        behaviour.execute(OpType.CONST, [])


def test_operand_count_checked(behaviour):
    with pytest.raises(SimulationError):
        behaviour.execute(OpType.ADD, [1])
    with pytest.raises(SimulationError):
        behaviour.execute(OpType.ABS, [1, 2])


def test_memory_ops_not_executable(behaviour):
    with pytest.raises(SimulationError):
        behaviour.execute(OpType.LOAD, [])
    with pytest.raises(SimulationError):
        behaviour.execute(OpType.STORE, [1])


def test_wrapping_addition(wrapping):
    assert wrapping.execute(OpType.ADD, [32767, 1]) == -32768
    assert wrapping.execute(OpType.SUB, [-32768, 1]) == 32767


def test_product_has_double_width(wrapping):
    # 300 * 300 = 90000 fits in 32 bits, so it must NOT wrap at 16 bits.
    assert wrapping.execute(OpType.MUL, [300, 300]) == 90000
    # But it wraps at 32 bits.
    assert wrapping.execute(OpType.MUL, [65535, 65535]) != 65535 * 65535


def test_no_wrap_mode_keeps_exact_values(behaviour):
    assert behaviour.execute(OpType.MUL, [65535, 65535]) == 65535 * 65535


def test_invalid_width_rejected():
    with pytest.raises(SimulationError):
        FunctionalUnitBehaviour(width_bits=0)
