"""Tests for the data-memory model."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.memory import DataMemory


def test_initialise_and_load():
    memory = DataMemory({"x": [1, 2, 3]})
    assert memory.load("x", 0) == 1
    assert memory.load("x", 2) == 3
    assert memory.load_count == 2


def test_default_value_for_missing_elements():
    memory = DataMemory({"x": [1]}, default_value=7)
    assert memory.load("x", 10) == 7
    assert memory.load("nonexistent", 0) == 7


def test_strict_mode_rejects_unknown_arrays():
    memory = DataMemory(strict=True)
    with pytest.raises(SimulationError):
        memory.load("ghost", 0)
    with pytest.raises(SimulationError):
        memory.as_list("ghost")
    memory.declare("known")
    assert memory.load("known", 0) == 0


def test_store_and_counters():
    memory = DataMemory()
    memory.store("y", 3, 42)
    assert memory.store_count == 1
    assert memory.load("y", 3) == 42
    assert memory.value("y", 3) == 42
    # value() does not count as a bus access.
    assert memory.load_count == 1


def test_as_list_dense_representation():
    memory = DataMemory()
    memory.store("y", 0, 5)
    memory.store("y", 2, 7)
    assert memory.as_list("y") == [5, 0, 7]
    assert memory.as_list("y", length=5) == [5, 0, 7, 0, 0]
    assert memory.as_list("missing") == []


def test_arrays_listing():
    memory = DataMemory({"b": [1], "a": [2]})
    assert memory.arrays() == ["a", "b"]


def test_copy_is_independent():
    memory = DataMemory({"x": [1, 2]})
    clone = memory.copy()
    clone.store("x", 0, 99)
    assert memory.value("x", 0) == 1
    assert clone.value("x", 0) == 99
    assert clone.load_count == 0


def test_values_coerced_to_int():
    memory = DataMemory({"x": [1.0, 2.0]})
    assert memory.load("x", 1) == 2
    memory.store("x", 0, 3.0)
    assert isinstance(memory.value("x", 0), int)
