"""Tests for the cycle-accurate functional simulator."""

from __future__ import annotations

import pytest

from repro.arch import base_architecture, rsp_architecture
from repro.errors import SimulationError
from repro.ir import DFGBuilder, OpType
from repro.mapping.loop_pipelining import LoopPipeliningScheduler
from repro.mapping.schedule import Schedule, ScheduledOperation
from repro.sim import ArraySimulator, DataMemory


def mac_dfg():
    builder = DFGBuilder("mac")
    a = builder.load("x", 0)
    b = builder.load("y", 0)
    c = builder.mul(a, b)
    k = builder.const(10)
    d = builder.add(c, k)
    builder.store("z", 0, d)
    return builder.build()


def schedule_of(dfg, architecture):
    return LoopPipeliningScheduler(architecture).schedule(dfg, kernel_name=dfg.name)


def test_simple_mac_result(base_arch):
    dfg = mac_dfg()
    schedule = schedule_of(dfg, base_arch)
    memory = DataMemory({"x": [6], "y": [7]})
    result = ArraySimulator().run(schedule, dfg, memory)
    assert result.memory.value("z", 0) == 6 * 7 + 10
    assert result.cycles == schedule.length
    assert result.executed_operations == len(schedule)


def test_simulation_respects_pipelined_multiplier(rsp2_arch):
    dfg = mac_dfg()
    schedule = schedule_of(dfg, rsp2_arch)
    memory = DataMemory({"x": [3], "y": [4]})
    result = ArraySimulator().run(schedule, dfg, memory)
    assert result.memory.value("z", 0) == 22
    # The multiplication's trace event carries its shared-unit binding.
    mul_events = result.trace.events_of_type(OpType.MUL)
    assert len(mul_events) == 1
    assert mul_events[0].shared_unit is not None


def test_values_exposed_per_operation(base_arch):
    dfg = mac_dfg()
    schedule = schedule_of(dfg, base_arch)
    result = ArraySimulator().run(schedule, dfg, DataMemory({"x": [2], "y": [5]}))
    mul_name = dfg.operations_of_type(OpType.MUL)[0].name
    assert result.value_of(mul_name) == 10
    with pytest.raises(SimulationError):
        result.value_of("ghost")


def test_subtraction_operand_order_preserved(base_arch):
    builder = DFGBuilder()
    a = builder.load("x", 0)
    b = builder.load("y", 0)
    diff = builder.sub(a, b)
    builder.store("z", 0, diff)
    dfg = builder.build()
    schedule = schedule_of(dfg, base_arch)
    result = ArraySimulator().run(schedule, dfg, DataMemory({"x": [10], "y": [3]}))
    assert result.memory.value("z", 0) == 7


def test_shift_and_abs(base_arch):
    builder = DFGBuilder()
    a = builder.load("x", 0)
    shifted = builder.shift(a, -1)
    b = builder.load("y", 0)
    difference = builder.sub(shifted, b)
    absolute = builder.abs(difference)
    builder.store("z", 0, absolute)
    dfg = builder.build()
    schedule = schedule_of(dfg, base_arch)
    result = ArraySimulator().run(schedule, dfg, DataMemory({"x": [8], "y": [9]}))
    assert result.memory.value("z", 0) == abs(8 // 2 - 9)


def test_dependence_violation_caught_at_runtime(base_arch):
    """A hand-built schedule that consumes a value too early is rejected."""
    dfg = mac_dfg()
    bad = Schedule(base_arch, "bad")
    by_type = {op.optype: op for op in dfg.operations()}
    bad.add(ScheduledOperation(operation=by_type[OpType.MUL], cycle=0, row=0, col=0))
    loads = dfg.operations_of_type(OpType.LOAD)
    bad.add(ScheduledOperation(operation=loads[0], cycle=0, row=1, col=0))
    bad.add(ScheduledOperation(operation=loads[1], cycle=0, row=2, col=0))
    bad.add(ScheduledOperation(operation=by_type[OpType.ADD], cycle=1, row=0, col=0))
    bad.add(ScheduledOperation(operation=by_type[OpType.STORE], cycle=2, row=0, col=0))
    with pytest.raises(SimulationError):
        ArraySimulator().run(bad, dfg, DataMemory({"x": [1], "y": [1]}), validate=False)


def test_validation_rejects_illegal_schedule_before_running(base_arch):
    dfg = mac_dfg()
    incomplete = Schedule(base_arch, "incomplete")
    loads = dfg.operations_of_type(OpType.LOAD)
    incomplete.add(ScheduledOperation(operation=loads[0], cycle=0, row=0, col=0))
    with pytest.raises(Exception):
        ArraySimulator().run(incomplete, dfg, DataMemory())


def test_trace_contents(base_arch):
    dfg = mac_dfg()
    schedule = schedule_of(dfg, base_arch)
    result = ArraySimulator().run(schedule, dfg, DataMemory({"x": [1], "y": [2]}))
    trace = result.trace
    assert len(trace) == len(schedule)
    assert trace.events_at(0)
    busiest_cycle, count = trace.busiest_cycle()
    assert count >= 1
    text = trace.format(max_events=3)
    assert "cycle" in text
    assert len(text.splitlines()) == 3


def test_missing_memory_defaults_to_zero(base_arch):
    dfg = mac_dfg()
    schedule = schedule_of(dfg, base_arch)
    result = ArraySimulator().run(schedule, dfg)
    assert result.memory.value("z", 0) == 10  # 0*0 + 10
