"""Smoke tests for the runnable examples.

The heavyweight exploration example is exercised separately through
``repro.flow`` tests; here the two fast examples are imported and executed
to ensure the documented entry points keep working.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_examples_directory_contains_documented_scripts():
    names = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert {
        "quickstart.py",
        "design_space_exploration.py",
        "matmul_schedules.py",
        "custom_kernel.py",
    } <= names


def test_quickstart_runs_and_verifies_against_numpy(capsys):
    pytest.importorskip("numpy", reason="the quickstart verifies against numpy")
    module = load_example("quickstart")
    module.main()
    output = capsys.readouterr().out
    assert "RSP#2" in output
    assert "OK" in output


def test_matmul_schedules_example_renders_both_figures(capsys):
    module = load_example("matmul_schedules")
    module.main()
    output = capsys.readouterr().out
    assert "Base 4x4" in output
    assert "1*" in output and "2*" in output


def test_custom_kernel_example_defines_a_valid_kernel():
    pytest.importorskip("numpy", reason="the example simulates against numpy")
    module = load_example("custom_kernel")
    kernel = module.make_fir_kernel()
    from repro.ir import validate_dfg

    validate_dfg(kernel.build(iterations=4))
    assert kernel.operation_set_names() == ["add", "mult"]
