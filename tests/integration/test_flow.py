"""Tests for the end-to-end RSP design flow (paper Figure 7)."""

from __future__ import annotations

import pytest

from repro.core import ExplorationConstraints
from repro.core.rsp_params import paper_parameters
from repro.errors import ExplorationError
from repro.flow import FlowOutcome, run_rsp_flow
from repro.kernels import get_kernel


@pytest.fixture(scope="module")
def small_domain_outcome():
    """Flow over a small multiplication-heavy domain (kept small for speed)."""
    kernels = [get_kernel("ICCG"), get_kernel("MVM"), get_kernel("Hydro")]
    return run_rsp_flow(kernels)


def test_flow_requires_kernels():
    with pytest.raises(ExplorationError):
        run_rsp_flow([])


def test_flow_produces_all_stages(small_domain_outcome):
    outcome = small_domain_outcome
    assert isinstance(outcome, FlowOutcome)
    assert outcome.base_architecture.is_base
    assert set(outcome.base_mappings) == {"ICCG", "MVM", "Hydro"}
    assert set(outcome.profiles) == {"ICCG", "MVM", "Hydro"}
    assert outcome.exploration.evaluated


def test_flow_selects_a_sharing_design_and_remaps(small_domain_outcome):
    outcome = small_domain_outcome
    assert outcome.selected_architecture is not None
    assert outcome.selected_name != "Base"
    assert set(outcome.rsp_mappings) == set(outcome.base_mappings)
    for name, result in outcome.rsp_mappings.items():
        assert result.architecture.name == outcome.selected_name
        assert result.cycles >= outcome.base_mappings[name].cycles


def test_flow_totals(small_domain_outcome):
    outcome = small_domain_outcome
    assert outcome.total_base_cycles() == sum(
        result.cycles for result in outcome.base_mappings.values()
    )
    assert outcome.total_selected_cycles() >= outcome.total_base_cycles()


def test_flow_with_explicit_candidates():
    kernels = [get_kernel("ICCG")]
    candidates = [paper_parameters(2, pipelined=True)]
    outcome = run_rsp_flow(kernels, candidates=candidates)
    assert len(outcome.exploration.evaluated) == 1
    assert outcome.selected_name in ("RSP#2", "rsp(shr=2,shc=0,stages=2)")


def test_flow_with_impossible_stall_constraint_falls_back_to_base():
    """When every sharing candidate violates the constraints, nothing is selected."""
    kernels = [get_kernel("ICCG")]
    candidates = [paper_parameters(1, pipelined=True)]
    outcome = run_rsp_flow(
        kernels,
        candidates=candidates,
        constraints=ExplorationConstraints(max_execution_time_ratio=0.01),
    )
    assert outcome.selected_architecture is None
    assert outcome.selected_name == "Base"
    assert outcome.rsp_mappings == {}


def test_flow_base_only_domain_can_select_base():
    """A domain with no multiplications still completes; base may remain selected."""
    outcome = run_rsp_flow([get_kernel("SAD")])
    assert outcome.exploration.selected is not None
    # Whatever is selected, the flow's bookkeeping stays consistent.
    if outcome.selected_architecture is None:
        assert outcome.rsp_mappings == {}
        assert outcome.total_selected_cycles() == outcome.total_base_cycles()


def test_flow_with_artifact_store_is_identical_and_warm(tmp_path):
    """A persistent artifact store leaves the flow's outputs unchanged."""
    from repro.engine.artifacts import ArtifactStore

    kernels = [get_kernel("ICCG")]
    plain = run_rsp_flow(kernels)
    cold = run_rsp_flow(kernels, artifact_store=ArtifactStore(tmp_path))
    warm = run_rsp_flow(kernels, artifact_store=ArtifactStore(tmp_path))

    for outcome in (cold, warm):
        assert outcome.selected_name == plain.selected_name
        assert outcome.profiles == plain.profiles
        assert outcome.total_selected_cycles() == plain.total_selected_cycles()


def test_explorer_for_kernels_matches_flow_profiles(tmp_path):
    """The explorer convenience constructor profiles through the pipeline."""
    from repro.core.exploration import RSPDesignSpaceExplorer
    from repro.engine.artifacts import ArtifactStore

    kernels = [get_kernel("ICCG"), get_kernel("MVM")]
    explorer = RSPDesignSpaceExplorer.for_kernels(kernels, store=ArtifactStore(tmp_path))
    assert set(explorer.profiles) == {"ICCG", "MVM"}
    assert explorer.profiles == run_rsp_flow(kernels).profiles
    # Second construction from the same store: profiles come back identical.
    rebuilt = RSPDesignSpaceExplorer.for_kernels(kernels, store=ArtifactStore(tmp_path))
    assert rebuilt.profiles == explorer.profiles
