"""End-to-end numerical correctness: mapped kernels compute the right values.

These tests close the loop the paper leaves implicit: the schedules the
mapper produces — on the base architecture and on RS/RSP design points —
are executed by the functional simulator and the results are checked
against NumPy reference computations.
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy", reason="reference computations need numpy")

from repro.arch import base_architecture, paper_architectures, rs_architecture, rsp_architecture
from repro.kernels import (
    fft_multiplication_loop,
    get_kernel,
    inner_product,
    matrix_multiplication,
    matrix_vector_multiplication,
    sad_16x16,
)
from repro.mapping import RSPMapper
from repro.sim import ArraySimulator, DataMemory

RNG = np.random.default_rng(20050307)


@pytest.fixture(scope="module")
def module_mapper():
    return RSPMapper()


def simulate(kernel, architecture, memory, mapper):
    result = mapper.map_kernel(kernel, architecture)
    return ArraySimulator().run(result.schedule, result.dfg, memory)


class TestMatrixMultiplication:
    @pytest.mark.parametrize("architecture_factory", [
        base_architecture,
        lambda: rs_architecture(1),
        lambda: rsp_architecture(2),
    ])
    def test_matches_numpy_on_every_architecture_class(self, module_mapper, architecture_factory):
        order, constant = 4, 2
        kernel = matrix_multiplication(order=order, constant=constant)
        x = RNG.integers(-20, 20, size=(order, order))
        y = RNG.integers(-20, 20, size=(order, order))
        memory = DataMemory({"X": x.flatten().tolist(), "Y": y.flatten().tolist()})
        simulation = simulate(kernel, architecture_factory(), memory, module_mapper)
        expected = constant * (x @ y)
        measured = np.array(simulation.memory.as_list("Z", order * order)).reshape(order, order)
        np.testing.assert_array_equal(measured, expected)


class TestMatrixVectorMultiplication:
    def test_mvm_matches_numpy(self, module_mapper):
        kernel = matrix_vector_multiplication(iterations=64, vector_length=8)
        matrix = RNG.integers(-30, 30, size=(8, 8))
        vector = RNG.integers(-30, 30, size=8)
        memory = DataMemory({"A": matrix.flatten().tolist(), "x": vector.tolist()})
        simulation = simulate(kernel, rsp_architecture(2), memory, module_mapper)
        measured = np.array(simulation.memory.as_list("y", 8))
        np.testing.assert_array_equal(measured, matrix @ vector)


class TestInnerProduct:
    def test_inner_product_matches_numpy(self, module_mapper):
        kernel = inner_product(iterations=64)
        z = RNG.integers(-10, 10, size=64)
        x = RNG.integers(-10, 10, size=64)
        memory = DataMemory({"z": z.tolist(), "x": x.tolist()})
        simulation = simulate(kernel, base_architecture(), memory, module_mapper)
        assert simulation.memory.value("q", 0) == int(np.dot(z, x))


class TestSAD:
    def test_sad_matches_numpy(self, module_mapper):
        kernel = sad_16x16(iterations=16, width=16)
        current = RNG.integers(0, 255, size=(16, 16))
        reference = RNG.integers(0, 255, size=(16, 16))
        memory = DataMemory({"cur": current.flatten().tolist(), "ref": reference.flatten().tolist()})
        simulation = simulate(kernel, rsp_architecture(1), memory, module_mapper)
        assert simulation.memory.value("sad", 0) == int(np.abs(current - reference).sum())


class TestFFTButterfly:
    def test_fft_twiddle_loop_matches_numpy(self, module_mapper):
        iterations = 16
        kernel = fft_multiplication_loop(iterations=iterations)
        a = RNG.integers(-15, 15, size=iterations) + 1j * RNG.integers(-15, 15, size=iterations)
        w = RNG.integers(-15, 15, size=iterations) + 1j * RNG.integers(-15, 15, size=iterations)
        b = RNG.integers(-15, 15, size=iterations) + 1j * RNG.integers(-15, 15, size=iterations)
        memory = DataMemory(
            {
                "ar": a.real.astype(int).tolist(),
                "ai": a.imag.astype(int).tolist(),
                "wr": w.real.astype(int).tolist(),
                "wi": w.imag.astype(int).tolist(),
                "br": b.real.astype(int).tolist(),
                "bi": b.imag.astype(int).tolist(),
            }
        )
        simulation = simulate(kernel, rsp_architecture(2), memory, module_mapper)
        product = a * w
        out0 = b + product
        out1 = b - product
        np.testing.assert_array_equal(
            np.array(simulation.memory.as_list("or0", iterations)), out0.real.astype(int)
        )
        np.testing.assert_array_equal(
            np.array(simulation.memory.as_list("oi0", iterations)), out0.imag.astype(int)
        )
        np.testing.assert_array_equal(
            np.array(simulation.memory.as_list("or1", iterations)), out1.real.astype(int)
        )
        np.testing.assert_array_equal(
            np.array(simulation.memory.as_list("oi1", iterations)), out1.imag.astype(int)
        )


class TestCrossArchitectureConsistency:
    def test_same_results_on_every_paper_architecture(self, module_mapper):
        """Sharing and pipelining change the schedule, never the values."""
        kernel = matrix_multiplication(order=3, constant=1)
        x = RNG.integers(-9, 9, size=(3, 3))
        y = RNG.integers(-9, 9, size=(3, 3))
        reference = None
        for architecture in paper_architectures():
            memory = DataMemory({"X": x.flatten().tolist(), "Y": y.flatten().tolist()})
            simulation = simulate(kernel, architecture, memory, module_mapper)
            outcome = simulation.memory.as_list("Z", 9)
            if reference is None:
                reference = outcome
            assert outcome == reference, architecture.name
        np.testing.assert_array_equal(np.array(reference).reshape(3, 3), x @ y)
