"""Qualitative reproduction of the paper's claims (shape, not absolute numbers).

Each test states the claim as the paper makes it and checks that the
reproduction's models and mapper reach the same conclusion.
"""

from __future__ import annotations

import pytest

from repro.arch import base_architecture, paper_architectures, rs_architecture, rsp_architecture
from repro.core import (
    HardwareCostModel,
    RSPDesignSpaceExplorer,
    TimingModel,
    classify_components,
    ResourceClass,
)
from repro.arch.components import default_component_library
from repro.eval.metrics import execution_time_ns
from repro.kernels import get_kernel, paper_suite
from repro.mapping import RSPMapper, extract_profile


@pytest.fixture(scope="module")
def module_mapper():
    return RSPMapper()


@pytest.fixture(scope="module")
def cost():
    return HardwareCostModel()


@pytest.fixture(scope="module")
def timing():
    return TimingModel()


def test_claim_multiplier_is_the_critical_resource():
    """Table 1: the array multiplier dominates both area and delay."""
    classification = classify_components(default_component_library())
    assert classification["array_multiplier"] is ResourceClass.AREA_AND_DELAY_CRITICAL
    assert sum(1 for value in classification.values() if value.is_critical) == 1


def test_claim_area_reduction_up_to_about_forty_percent(cost):
    """Abstract: area reduced by up to 42.8% (RS#1)."""
    reductions = {
        spec.name: cost.area_reduction_percent(spec)
        for spec in paper_architectures()
        if spec.name != "Base"
    }
    best_design = max(reductions, key=lambda name: reductions[name])
    assert best_design == "RS#1"
    assert 33.0 <= reductions["RS#1"] <= 45.0


def test_claim_delay_reduction_up_to_about_a_third(timing):
    """Abstract: critical path reduced by up to 34.69% (RSP#1)."""
    reductions = {
        spec.name: timing.delay_reduction_percent(spec)
        for spec in paper_architectures()
        if spec.name != "Base"
    }
    best_design = max(reductions, key=lambda name: reductions[name])
    assert best_design == "RSP#1"
    assert 28.0 <= reductions["RSP#1"] <= 40.0


def test_claim_every_rs_and_rsp_design_is_cheaper_than_base(cost):
    """Equation 2's constraint holds for all eight sharing designs."""
    base_area = cost.array_area(base_architecture())
    for spec in paper_architectures():
        if spec.name == "Base":
            continue
        assert cost.array_area(spec) < base_area


def test_claim_rs_designs_slow_the_clock_rsp_designs_speed_it_up(timing):
    base_delay = timing.critical_path_ns(base_architecture())
    for design in range(1, 5):
        assert timing.critical_path_ns(rs_architecture(design)) > base_delay
        assert timing.critical_path_ns(rsp_architecture(design)) < base_delay


def test_claim_rsp_architecture_2_runs_the_whole_domain_without_stall(module_mapper):
    """Tables 4/5: RSP#2 supports all selected kernels without stall.

    The reproduction's 2D-FDCT packs multiplications more densely than the
    paper's mapping, leaving RSP#2 a few residual stall cycles there
    (documented in EXPERIMENTS.md); all other kernels are stall-free.
    """
    for kernel in paper_suite():
        result = module_mapper.map_kernel(kernel, rsp_architecture(2))
        if kernel.name == "2D-FDCT":
            assert result.stall_cycles <= 5
        else:
            assert result.stall_cycles == 0, kernel.name


def test_claim_rs1_lacks_multipliers_for_heavy_kernels(module_mapper):
    """Table 4/5: RS#1 shows stalls for State and 2D-FDCT."""
    for name in ("State", "2D-FDCT"):
        result = module_mapper.map_kernel(get_kernel(name), rs_architecture(1))
        assert result.stall_cycles > 0, name


def test_claim_rsp_utilises_shared_resources_better_than_rs(module_mapper):
    """Section 5.3: under the same sharing, RSP stalls no more than RS (2D-FDCT example)."""
    kernel = get_kernel("2D-FDCT")
    for design in (1, 2):
        rs_stalls = module_mapper.map_kernel(kernel, rs_architecture(design)).stall_cycles
        rsp_stalls = module_mapper.map_kernel(kernel, rsp_architecture(design)).stall_cycles
        assert rsp_stalls <= rs_stalls


def test_claim_sad_benefits_most_from_pipelining(module_mapper, timing):
    """Section 5.3: SAD (no multiplications) gains the most from the faster clock,
    more than the multiplication-heavy 2D-FDCT."""
    improvements = {}
    for name in ("SAD", "2D-FDCT", "MVM"):
        kernel = get_kernel(name)
        base_result = module_mapper.map_kernel(kernel, base_architecture())
        base_time = execution_time_ns(
            base_result.cycles, timing.critical_path_ns(base_architecture())
        )
        rsp_result = module_mapper.map_kernel(kernel, rsp_architecture(1))
        rsp_time = execution_time_ns(
            rsp_result.cycles, timing.critical_path_ns(rsp_architecture(1))
        )
        improvements[name] = 100.0 * (base_time - rsp_time) / base_time
    assert improvements["SAD"] >= improvements["2D-FDCT"]
    assert improvements["SAD"] == max(improvements.values())
    # And the SAD improvement is in the ballpark of the paper's 35.7%.
    assert 25.0 <= improvements["SAD"] <= 45.0


def test_claim_best_designs_are_rsp_architectures(module_mapper, timing):
    """Tables 4/5: the best per-kernel execution time is always on an RSP design,
    and for almost every kernel it is RSP#1 or RSP#2 (the paper's conclusion)."""
    winners = []
    for kernel in paper_suite():
        times = {}
        for spec in paper_architectures():
            result = module_mapper.map_kernel(kernel, spec)
            times[spec.name] = execution_time_ns(result.cycles, timing.critical_path_ns(spec))
        best = min((name for name in times if name != "Base"), key=lambda name: times[name])
        winners.append(best)
    assert all(winner.startswith("RSP") for winner in winners)
    in_first_two = sum(1 for winner in winners if winner in ("RSP#1", "RSP#2"))
    assert in_first_two >= len(winners) - 1


def test_claim_exploration_keeps_only_pareto_designs(module_mapper):
    """Section 4: the exploration rejects over-budget designs and keeps Pareto points."""
    profiles = {}
    for kernel in paper_suite():
        schedule = module_mapper.base_schedule(kernel)
        profiles[kernel.name] = extract_profile(schedule, module_mapper.build_dfg(kernel))
    explorer = RSPDesignSpaceExplorer(profiles)
    outcome = explorer.explore()
    assert outcome.pareto
    # No Pareto member is dominated by another evaluated design.
    for member in outcome.pareto:
        for other in outcome.feasible:
            dominates_member = (
                other.area_slices <= member.area_slices
                and other.total_execution_time_ns <= member.total_execution_time_ns
                and (
                    other.area_slices < member.area_slices
                    or other.total_execution_time_ns < member.total_execution_time_ns
                )
            )
            assert not dominates_member
    # The selected design uses resource sharing (domain is multiplication heavy).
    assert outcome.selected is not None
    assert outcome.selected.parameters.uses_sharing
