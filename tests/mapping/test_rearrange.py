"""Tests for the RS/RP configuration-context rearrangement."""

from __future__ import annotations

import pytest

from repro.arch import base_architecture, rs_architecture, rsp_architecture
from repro.ir import DFGBuilder
from repro.kernels import get_kernel
from repro.mapping.loop_pipelining import LoopPipeliningScheduler
from repro.mapping.rearrange import (
    RearrangementResult,
    evaluate_rearrangement,
    rearrange_schedule,
    remap_schedule,
)


def mult_burst_dfg(count: int = 24):
    """Independent MACs whose multiplications all become ready together."""
    builder = DFGBuilder("burst")
    for index in range(count):
        builder.set_iteration(index)
        a = builder.load("x", index)
        b = builder.load("y", index)
        product = builder.mul(a, b)
        builder.store("z", index, product)
    return builder.build()


@pytest.fixture(scope="module")
def burst_base():
    dfg = mult_burst_dfg()
    schedule = LoopPipeliningScheduler(base_architecture()).schedule(dfg, kernel_name="burst")
    return dfg, schedule


def test_rearranged_schedule_is_valid_on_target(burst_base):
    dfg, base_schedule = burst_base
    for target in (rs_architecture(1), rs_architecture(4), rsp_architecture(1), rsp_architecture(2)):
        rearranged = rearrange_schedule(base_schedule, dfg, target)
        rearranged.validate(dfg)
        assert len(rearranged) == len(base_schedule)


def test_rearrangement_keeps_placements(burst_base):
    dfg, base_schedule = burst_base
    rearranged = rearrange_schedule(base_schedule, dfg, rs_architecture(1))
    for entry in base_schedule.operations():
        assert rearranged.get(entry.name).position == entry.position


def test_rearrangement_never_schedules_earlier_than_base(burst_base):
    dfg, base_schedule = burst_base
    rearranged = rearrange_schedule(base_schedule, dfg, rsp_architecture(2))
    for entry in base_schedule.operations():
        assert rearranged.get(entry.name).cycle >= entry.cycle


def test_rs_capacity_ordering(burst_base):
    dfg, base_schedule = burst_base
    lengths = [
        rearrange_schedule(base_schedule, dfg, rs_architecture(design)).length
        for design in range(1, 5)
    ]
    # More shared multipliers never make the schedule longer.
    assert lengths == sorted(lengths, reverse=True)
    assert lengths[0] >= base_schedule.length


def test_unlimited_shared_rs_reproduces_base_length(burst_base):
    dfg, base_schedule = burst_base
    stall_free = rearrange_schedule(
        base_schedule, dfg, rs_architecture(1), unlimited_shared=True
    )
    assert stall_free.length == base_schedule.length


def test_evaluate_rearrangement_stall_accounting(burst_base):
    dfg, base_schedule = burst_base
    result = evaluate_rearrangement(base_schedule, dfg, rs_architecture(1))
    assert isinstance(result, RearrangementResult)
    assert result.base_cycles == base_schedule.length
    assert result.stall_free_cycles == base_schedule.length
    assert result.cycles == result.stall_free_cycles + result.stall_cycles
    assert result.stall_cycles >= 0


def test_evaluate_rearrangement_base_is_identity(burst_base):
    dfg, base_schedule = burst_base
    result = evaluate_rearrangement(base_schedule, dfg, base_architecture())
    assert result.cycles == base_schedule.length
    assert result.stall_cycles == 0
    assert result.pipeline_overhead_cycles == 0


def test_rsp_pipeline_overhead_separated_from_stalls(burst_base):
    dfg, base_schedule = burst_base
    result = evaluate_rearrangement(base_schedule, dfg, rsp_architecture(4))
    # RSP#4 has plenty of multipliers: the extra cycles are pipeline overhead,
    # not resource-lack stalls.
    assert result.pipeline_overhead_cycles >= 0
    assert result.stall_cycles <= 1


def test_rsp_relaxes_sharing_pressure_vs_rs(mapper):
    """Same sharing topology: the RSP design stalls no more than the RS design."""
    kernel = get_kernel("2D-FDCT")
    rs_result = mapper.map_kernel(kernel, rs_architecture(2))
    rsp_result = mapper.map_kernel(kernel, rsp_architecture(2))
    assert rsp_result.stall_cycles <= rs_result.stall_cycles


def test_remap_schedule_not_worse_than_rearrangement(burst_base):
    """Free placement (full re-mapping) never needs more cycles than rearrangement."""
    dfg, base_schedule = burst_base
    target = rs_architecture(1)
    rearranged = rearrange_schedule(base_schedule, dfg, target)
    remapped = remap_schedule(dfg, target, kernel_name="burst")
    remapped.validate(dfg)
    assert remapped.length <= rearranged.length
