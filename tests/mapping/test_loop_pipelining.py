"""Tests for the loop-pipelining list scheduler."""

from __future__ import annotations

import pytest

from repro.arch import (
    ArchitectureSpec,
    ArraySpec,
    RowBusSpec,
    base_architecture,
    rs_architecture,
    rsp_architecture,
)
from repro.errors import SchedulingError
from repro.ir import DFG, DFGBuilder, OpType
from repro.kernels import get_kernel, matrix_multiplication
from repro.mapping.loop_pipelining import LoopPipeliningScheduler


def chain_dfg(length: int = 5) -> DFG:
    builder = DFGBuilder("chain")
    value = builder.load("x", 0)
    for _ in range(length):
        value = builder.shift(value, 1)
    builder.store("y", 0, value)
    return builder.build()


def parallel_macs(count: int) -> DFG:
    builder = DFGBuilder("macs")
    for index in range(count):
        builder.set_iteration(index)
        a = builder.load("x", index)
        b = builder.load("y", index)
        product = builder.mul(a, b)
        builder.store("z", index, product)
    return builder.build()


def test_empty_dfg_gives_empty_schedule(base_arch):
    schedule = LoopPipeliningScheduler(base_arch).schedule(DFG("empty"))
    assert schedule.length == 0
    assert len(schedule) == 0


def test_serial_chain_length(base_arch):
    dfg = chain_dfg(5)
    schedule = LoopPipeliningScheduler(base_arch).schedule(dfg)
    schedule.validate(dfg)
    # load + 5 shifts + store, strictly serial.
    assert schedule.length == 7


def test_constants_are_not_scheduled(base_arch):
    builder = DFGBuilder()
    c = builder.const(3)
    a = builder.load("x", 0)
    builder.mul(a, c)
    dfg = builder.build()
    schedule = LoopPipeliningScheduler(base_arch).schedule(dfg)
    assert c not in schedule
    assert len(schedule) == 2
    schedule.validate(dfg)


def test_latency_model_follows_architecture(base_arch, rsp2_arch):
    from repro.ir import Operation

    mul = Operation("m", OpType.MUL)
    add = Operation("a", OpType.ADD)
    assert LoopPipeliningScheduler(base_arch).latency_of(mul) == 1
    assert LoopPipeliningScheduler(rsp2_arch).latency_of(mul) == 2
    assert LoopPipeliningScheduler(rsp2_arch).latency_of(add) == 1


def test_load_bandwidth_limits_throughput(base_arch):
    # 64 independent MACs need 128 loads; 16 loads/cycle -> at least 8 cycles.
    dfg = parallel_macs(64)
    schedule = LoopPipeliningScheduler(base_arch).schedule(dfg)
    schedule.validate(dfg)
    assert schedule.length >= 128 // base_arch.array.loads_per_cycle
    # Loads per row per cycle never exceed the bus count (validated above),
    # and the total schedule is not absurdly long either.
    assert schedule.length <= 30


def test_schedules_are_deterministic(base_arch):
    dfg_a = parallel_macs(16)
    dfg_b = parallel_macs(16)
    schedule_a = LoopPipeliningScheduler(base_arch).schedule(dfg_a)
    schedule_b = LoopPipeliningScheduler(base_arch).schedule(dfg_b)
    placement_a = [(entry.name, entry.cycle, entry.row, entry.col) for entry in schedule_a.operations()]
    placement_b = [(entry.name, entry.cycle, entry.row, entry.col) for entry in schedule_b.operations()]
    assert placement_a == placement_b


def test_iterations_prefer_their_own_column(base_arch):
    dfg = parallel_macs(8)
    schedule = LoopPipeliningScheduler(base_arch).schedule(dfg)
    for entry in schedule.operations():
        if entry.operation.optype is OpType.MUL:
            assert entry.col == entry.operation.iteration % base_arch.array.cols


def test_sharing_binds_multiplications_to_units():
    arch = rs_architecture(2)
    dfg = parallel_macs(16)
    schedule = LoopPipeliningScheduler(arch).schedule(dfg)
    schedule.validate(dfg)
    for entry in schedule.operations():
        if entry.is_multiplication:
            assert entry.shared_unit is not None
        else:
            assert entry.shared_unit is None


def test_pipelined_multiplier_stretches_dependent_chains(base_arch, rsp2_arch):
    kernel = matrix_multiplication(order=2)
    dfg_base = kernel.build()
    dfg_rsp = kernel.build()
    base_len = LoopPipeliningScheduler(base_arch).schedule(dfg_base).length
    rsp_len = LoopPipeliningScheduler(rsp2_arch).schedule(dfg_rsp).length
    assert rsp_len >= base_len


def test_small_array_still_schedules():
    arch = ArchitectureSpec(
        name="tiny",
        array=ArraySpec(rows=2, cols=2, row_buses=RowBusSpec(read_buses=1, write_buses=1)),
    )
    dfg = parallel_macs(6)
    schedule = LoopPipeliningScheduler(arch).schedule(dfg)
    schedule.validate(dfg)
    assert schedule.length >= 6  # 12 loads through 2 read buses


def test_max_cycle_guard_raises():
    arch = base_architecture()
    dfg = parallel_macs(32)
    scheduler = LoopPipeliningScheduler(arch, max_cycles=1)
    with pytest.raises(SchedulingError, match="did not finish"):
        scheduler.schedule(dfg)


def test_paper_kernel_base_cycles_in_plausible_range(mapper):
    """Base-architecture schedule lengths land in the same range as paper Tables 4/5."""
    expectations = {
        "Hydro": (8, 25),
        "ICCG": (6, 25),
        "Inner product": (16, 40),
        "MVM": (9, 30),
        "SAD": (32, 60),
    }
    for name, (low, high) in expectations.items():
        schedule = mapper.base_schedule(get_kernel(name))
        assert low <= schedule.length <= high, (name, schedule.length)
