"""Tests for configuration-context generation."""

from __future__ import annotations

import pytest

from repro.arch import rs_architecture, rsp_architecture
from repro.ir import OpType
from repro.kernels import get_kernel, matrix_multiplication
from repro.mapping.context_gen import context_statistics, generate_context
from repro.mapping.loop_pipelining import LoopPipeliningScheduler


@pytest.fixture(scope="module")
def matmul_context(mapper_module):
    kernel = matrix_multiplication(order=2, constant=3)
    dfg = kernel.build()
    schedule = LoopPipeliningScheduler(rsp_architecture(2)).schedule(dfg, kernel_name=kernel.name)
    return dfg, schedule, generate_context(schedule, dfg)


@pytest.fixture(scope="module")
def mapper_module():
    from repro.mapping import RSPMapper

    return RSPMapper()


def test_context_covers_every_scheduled_operation(matmul_context):
    dfg, schedule, context = matmul_context
    assert context.active_word_count() == len(schedule)
    assert context.num_cycles == max(entry.cycle for entry in schedule.operations()) + 1


def test_context_words_carry_opcode_and_memory_target(matmul_context):
    dfg, schedule, context = matmul_context
    load_words = [
        word for _, _, word in context.active_words() if word.opcode is OpType.LOAD
    ]
    assert load_words
    assert all(word.array in ("X", "Y") for word in load_words)
    store_words = [
        word for _, _, word in context.active_words() if word.opcode is OpType.STORE
    ]
    assert all(word.array == "Z" for word in store_words)


def test_shared_multiplications_annotated_with_unit(matmul_context):
    dfg, schedule, context = matmul_context
    mul_words = [word for _, _, word in context.active_words() if word.opcode is OpType.MUL]
    assert mul_words
    assert all(word.uses_shared_resource for word in mul_words)
    assert all(word.shared_resource_id is not None for word in mul_words)


def test_constant_folded_into_immediate(matmul_context):
    dfg, schedule, context = matmul_context
    # The scaling multiplication by C=3 references the constant through the
    # immediate field rather than through an operand name.
    mul_words = [word for _, _, word in context.active_words() if word.opcode is OpType.MUL]
    scaled = [word for word in mul_words if word.immediate == 3]
    assert scaled
    assert all(len(word.operands) == 1 for word in scaled)


def test_context_statistics(matmul_context):
    _, schedule, context = matmul_context
    stats = context_statistics(context)
    assert stats["cycles"] == float(context.num_cycles)
    assert stats["active_words"] == float(len(schedule))
    assert 0.0 < stats["utilisation"] <= 1.0
    assert stats["storage_bits"] > 0


def test_context_on_rs_architecture(mapper_module):
    kernel = get_kernel("ICCG")
    result = mapper_module.map_kernel(kernel, rs_architecture(2))
    context = generate_context(result.schedule, result.dfg)
    assert context.num_cycles >= result.cycles - 1
    mults = [word for _, _, word in context.active_words() if word.opcode is OpType.MUL]
    assert all(word.uses_shared_resource for word in mults)
