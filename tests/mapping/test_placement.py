"""Tests for the resource tracker and column-preference helper."""

from __future__ import annotations

import pytest

from repro.arch import base_architecture, rs_architecture, rsp_architecture
from repro.errors import PlacementError
from repro.ir import Operation, OpType
from repro.mapping.placement import ResourceTracker, column_preference


def load_op(name="ld"):
    return Operation(name, OpType.LOAD, array="x", index=0)


def mul_op(name="mul"):
    return Operation(name, OpType.MUL)


class TestPEOccupancy:
    def test_claim_and_conflict(self, base_arch):
        tracker = ResourceTracker(base_arch)
        assert tracker.pe_free(0, 0, 0, duration=2)
        tracker.claim_pe(0, 0, 0, duration=2, name="a")
        assert not tracker.pe_free(1, 0, 0, duration=1)
        assert tracker.pe_free(2, 0, 0, duration=1)
        with pytest.raises(PlacementError):
            tracker.claim_pe(1, 0, 0, duration=1, name="b")


class TestBusSlots:
    def test_read_bus_limit(self, base_arch):
        tracker = ResourceTracker(base_arch)
        assert tracker.bus_free(0, 0, OpType.LOAD)
        tracker.claim_bus(0, 0, OpType.LOAD)
        tracker.claim_bus(0, 0, OpType.LOAD)
        assert not tracker.bus_free(0, 0, OpType.LOAD)
        # Other rows and other cycles are unaffected.
        assert tracker.bus_free(0, 1, OpType.LOAD)
        assert tracker.bus_free(1, 0, OpType.LOAD)

    def test_write_bus_limit(self, base_arch):
        tracker = ResourceTracker(base_arch)
        tracker.claim_bus(0, 0, OpType.STORE)
        assert not tracker.bus_free(0, 0, OpType.STORE)

    def test_compute_ops_do_not_need_buses(self, base_arch):
        tracker = ResourceTracker(base_arch)
        assert tracker.bus_free(0, 0, OpType.ADD)


class TestSharedUnits:
    def test_reachable_units_row_and_column(self):
        tracker = ResourceTracker(rs_architecture(3))
        units = tracker.reachable_units(2, 5)
        assert ("row", 2, 0) in units and ("row", 2, 1) in units
        assert ("col", 5, 0) in units
        assert len(units) == 3

    def test_no_units_on_base(self, base_arch):
        tracker = ResourceTracker(base_arch)
        assert tracker.reachable_units(0, 0) == []

    def test_allocation_prefers_row_then_column(self):
        tracker = ResourceTracker(rs_architecture(3))
        first = tracker.available_shared_unit(0, 2, 5)
        assert first == ("row", 2, 0)
        tracker.claim_shared_unit(first, 0, "m1")
        second = tracker.available_shared_unit(0, 2, 5)
        assert second == ("row", 2, 1)
        tracker.claim_shared_unit(second, 0, "m2")
        third = tracker.available_shared_unit(0, 2, 5)
        assert third == ("col", 5, 0)
        tracker.claim_shared_unit(third, 0, "m3")
        assert tracker.available_shared_unit(0, 2, 5) is None
        # The next cycle is free again.
        assert tracker.available_shared_unit(1, 2, 5) == ("row", 2, 0)

    def test_double_claim_rejected(self):
        tracker = ResourceTracker(rs_architecture(1))
        unit = tracker.available_shared_unit(0, 0, 0)
        tracker.claim_shared_unit(unit, 0, "m1")
        with pytest.raises(PlacementError):
            tracker.claim_shared_unit(unit, 0, "m2")

    def test_unlimited_mode_never_runs_out(self):
        tracker = ResourceTracker(rs_architecture(1), unlimited_shared=True)
        units = {tracker.available_shared_unit(0, 0, 0) for _ in range(20)}
        assert len(units) == 20
        # Claims are no-ops in unlimited mode.
        tracker.claim_shared_unit(("row", 0, 0), 0, "m")
        tracker.claim_shared_unit(("row", 0, 0), 0, "m2")


class TestCombinedFeasibility:
    def test_multiplication_needs_shared_unit_on_rs(self):
        tracker = ResourceTracker(rs_architecture(1))
        feasible, unit = tracker.placement_feasible(mul_op(), 0, 0, 0, duration=1)
        assert feasible and unit == ("row", 0, 0)
        tracker.claim(mul_op("m1"), 0, 0, 0, 1, unit)
        feasible, unit = tracker.placement_feasible(mul_op("m2"), 0, 0, 1, duration=1)
        assert not feasible

    def test_multiplication_on_base_needs_no_unit(self, base_arch):
        tracker = ResourceTracker(base_arch)
        feasible, unit = tracker.placement_feasible(mul_op(), 0, 0, 0, duration=1)
        assert feasible and unit is None

    def test_load_blocked_by_bus(self, base_arch):
        tracker = ResourceTracker(base_arch)
        tracker.claim(load_op("l1"), 0, 0, 0, 1, None)
        tracker.claim(load_op("l2"), 0, 0, 1, 1, None)
        feasible, _ = tracker.placement_feasible(load_op("l3"), 0, 0, 2, duration=1)
        assert not feasible

    def test_mult_row_balancing_counter(self, base_arch):
        tracker = ResourceTracker(base_arch)
        assert tracker.multiplications_in_row(0, 3) == 0
        tracker.claim(mul_op("m1"), 0, 3, 0, 1, None)
        assert tracker.multiplications_in_row(0, 3) == 1
        tracker.claim(mul_op("m2"), 0, 3, 1, 1, None)
        assert tracker.multiplications_in_row(0, 3) == 2


class TestColumnPreference:
    def test_preferred_column_first(self):
        assert column_preference(0, 4)[0] == 0
        assert column_preference(5, 4)[0] == 1

    def test_all_columns_visited_once(self):
        order = column_preference(3, 8)
        assert sorted(order) == list(range(8))
        assert len(order) == 8

    def test_invalid_column_count(self):
        with pytest.raises(PlacementError):
            column_preference(0, 0)
