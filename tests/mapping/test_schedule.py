"""Tests for the schedule data structure and its validation."""

from __future__ import annotations

import pytest

from repro.arch import base_architecture, rs_architecture
from repro.errors import SchedulingError
from repro.ir import DFGBuilder, Operation, OpType
from repro.mapping.schedule import Schedule, ScheduledOperation


def tiny_dfg():
    builder = DFGBuilder("tiny")
    a = builder.load("x", 0)
    b = builder.load("y", 0)
    c = builder.mul(a, b)
    builder.store("z", 0, c)
    return builder.build(), (a, b, c)


def entry(op: Operation, cycle: int, row: int, col: int, latency: int = 1, shared=None):
    return ScheduledOperation(operation=op, cycle=cycle, row=row, col=col,
                              latency=latency, shared_unit=shared)


class TestScheduledOperation:
    def test_finish_cycle_and_position(self):
        op = Operation("m", OpType.MUL)
        scheduled = entry(op, cycle=3, row=1, col=2, latency=2)
        assert scheduled.finish_cycle == 5
        assert scheduled.position == (1, 2)
        assert scheduled.is_multiplication

    def test_invalid_values_rejected(self):
        op = Operation("m", OpType.MUL)
        with pytest.raises(SchedulingError):
            entry(op, cycle=-1, row=0, col=0)
        with pytest.raises(SchedulingError):
            entry(op, cycle=0, row=0, col=0, latency=0)
        with pytest.raises(SchedulingError):
            ScheduledOperation(operation=op, cycle=0, row=-1, col=0)


class TestScheduleBasics:
    def test_add_and_length(self, base_arch):
        dfg, (a, b, c) = tiny_dfg()
        schedule = Schedule(base_arch, "tiny")
        schedule.add(entry(dfg.operation(a), 0, 0, 0))
        schedule.add(entry(dfg.operation(b), 0, 1, 0))
        schedule.add(entry(dfg.operation(c), 1, 0, 0, latency=2))
        assert len(schedule) == 3
        assert schedule.length == 3
        assert schedule.get(c).cycle == 1
        assert len(schedule.operations_at(0)) == 2

    def test_duplicate_operation_rejected(self, base_arch):
        dfg, (a, _, _) = tiny_dfg()
        schedule = Schedule(base_arch)
        schedule.add(entry(dfg.operation(a), 0, 0, 0))
        with pytest.raises(SchedulingError):
            schedule.add(entry(dfg.operation(a), 1, 0, 0))

    def test_out_of_array_placement_rejected(self, base_arch):
        dfg, (a, _, _) = tiny_dfg()
        schedule = Schedule(base_arch)
        with pytest.raises(SchedulingError):
            schedule.add(entry(dfg.operation(a), 0, 9, 0))

    def test_missing_operation_lookup(self, base_arch):
        with pytest.raises(SchedulingError):
            Schedule(base_arch).get("ghost")

    def test_empty_schedule_statistics(self, base_arch):
        schedule = Schedule(base_arch)
        assert schedule.length == 0
        assert schedule.max_multiplications_per_cycle() == 0
        assert schedule.pe_utilisation() == 0.0


class TestScheduleStatistics:
    def test_multiplications_in_flight_counts_pipeline_stages(self, base_arch):
        dfg, (a, b, c) = tiny_dfg()
        schedule = Schedule(base_arch)
        schedule.add(entry(dfg.operation(c), 2, 0, 0, latency=2))
        assert [m.name for m in schedule.multiplications_at(2)] == [c]
        assert len(schedule.multiplications_in_flight_at(2)) == 1
        assert len(schedule.multiplications_in_flight_at(3)) == 1
        assert len(schedule.multiplications_in_flight_at(4)) == 0
        assert schedule.max_multiplications_per_cycle() == 1
        assert schedule.max_multiplication_issues_per_cycle() == 1

    def test_busy_pes_tracking(self, base_arch):
        dfg, (a, b, c) = tiny_dfg()
        schedule = Schedule(base_arch)
        schedule.add(entry(dfg.operation(c), 0, 3, 4, latency=2))
        assert (3, 4) in schedule.busy_pes_at(1)
        assert schedule.busy_pes_at(2) == []


class TestScheduleValidation:
    def build_valid(self, base_arch):
        dfg, (a, b, c) = tiny_dfg()
        schedule = Schedule(base_arch, "tiny")
        schedule.add(entry(dfg.operation(a), 0, 0, 0))
        schedule.add(entry(dfg.operation(b), 0, 1, 0))
        schedule.add(entry(dfg.operation(c), 1, 0, 0))
        store = [op for op in dfg.operations() if op.optype is OpType.STORE][0]
        schedule.add(entry(store, 2, 0, 0))
        return dfg, schedule

    def test_valid_schedule_passes(self, base_arch):
        dfg, schedule = self.build_valid(base_arch)
        schedule.validate(dfg)

    def test_missing_operation_detected(self, base_arch):
        dfg, (a, b, c) = tiny_dfg()
        schedule = Schedule(base_arch)
        schedule.add(entry(dfg.operation(a), 0, 0, 0))
        with pytest.raises(SchedulingError, match="not scheduled"):
            schedule.validate(dfg)

    def test_dependence_violation_detected(self, base_arch):
        dfg, (a, b, c) = tiny_dfg()
        schedule = Schedule(base_arch)
        schedule.add(entry(dfg.operation(a), 0, 0, 0))
        schedule.add(entry(dfg.operation(b), 0, 1, 0))
        schedule.add(entry(dfg.operation(c), 0, 2, 0))  # consumes a/b too early
        store = [op for op in dfg.operations() if op.optype is OpType.STORE][0]
        schedule.add(entry(store, 1, 2, 0))
        with pytest.raises(SchedulingError, match="dependence violated"):
            schedule.validate(dfg)

    def test_pe_double_booking_detected(self, base_arch):
        builder = DFGBuilder()
        first = builder.load("x", 0)
        second = builder.load("y", 0)
        dfg = builder.build()
        schedule = Schedule(base_arch)
        schedule.add(entry(dfg.operation(first), 0, 0, 0))
        schedule.add(entry(dfg.operation(second), 0, 0, 0))
        with pytest.raises(SchedulingError, match="double-booked"):
            schedule.validate(dfg)

    def test_bus_oversubscription_detected(self, base_arch):
        builder = DFGBuilder()
        loads = [builder.load("x", index) for index in range(3)]
        dfg = builder.build()
        schedule = Schedule(base_arch)
        for col, name in enumerate(loads):
            schedule.add(entry(dfg.operation(name), 0, 0, col))
        with pytest.raises(SchedulingError, match="read buses"):
            schedule.validate(dfg)

    def test_shared_unit_required_on_sharing_architecture(self):
        arch = rs_architecture(1)
        dfg, (a, b, c) = tiny_dfg()
        schedule = Schedule(arch)
        schedule.add(entry(dfg.operation(a), 0, 0, 0))
        schedule.add(entry(dfg.operation(b), 0, 1, 0))
        schedule.add(entry(dfg.operation(c), 1, 0, 0))  # no shared unit bound
        store = [op for op in dfg.operations() if op.optype is OpType.STORE][0]
        schedule.add(entry(store, 2, 0, 0))
        with pytest.raises(SchedulingError, match="no shared multiplier"):
            schedule.validate(dfg)

    def test_shared_unit_reachability_checked(self):
        arch = rs_architecture(1)
        dfg, (a, b, c) = tiny_dfg()
        schedule = Schedule(arch)
        schedule.add(entry(dfg.operation(a), 0, 0, 0))
        schedule.add(entry(dfg.operation(b), 0, 1, 0))
        # Multiplication on row 0 bound to the row-5 multiplier: unreachable.
        schedule.add(entry(dfg.operation(c), 1, 0, 0, shared=("row", 5, 0)))
        store = [op for op in dfg.operations() if op.optype is OpType.STORE][0]
        schedule.add(entry(store, 2, 0, 0))
        with pytest.raises(SchedulingError, match="multiplier of row 5"):
            schedule.validate(dfg)

    def test_shared_unit_issue_conflict_detected(self):
        arch = rs_architecture(1)
        builder = DFGBuilder()
        a = builder.load("x", 0)
        b = builder.load("y", 0)
        c = builder.load("w", 1)
        d = builder.load("v", 1)
        m1 = builder.mul(a, b)
        m2 = builder.mul(c, d)
        dfg = builder.build()
        schedule = Schedule(arch)
        schedule.add(entry(dfg.operation(a), 0, 0, 0))
        schedule.add(entry(dfg.operation(b), 0, 1, 0))
        schedule.add(entry(dfg.operation(c), 0, 2, 0))
        schedule.add(entry(dfg.operation(d), 0, 3, 0))
        schedule.add(entry(dfg.operation(m1), 1, 0, 0, shared=("row", 0, 0)))
        schedule.add(entry(dfg.operation(m2), 1, 0, 1, shared=("row", 0, 0)))
        with pytest.raises(SchedulingError, match="two issues"):
            schedule.validate(dfg)
