"""Tests for schedule-profile extraction and the top-level mapper."""

from __future__ import annotations

import pytest

from repro.arch import base_architecture, paper_architectures, rs_architecture, rsp_architecture
from repro.core.stalls import ScheduleProfile, StallEstimator
from repro.errors import MappingError
from repro.kernels import get_kernel, matrix_multiplication
from repro.mapping import RSPMapper, extract_profile, extract_profiles
from repro.mapping.mapper import MappingResult


class TestProfileExtraction:
    def test_profile_counts_multiplication_issues(self, mapper, hydro_kernel):
        schedule = mapper.base_schedule(hydro_kernel)
        dfg = mapper.build_dfg(hydro_kernel)
        profile = extract_profile(schedule, dfg)
        assert isinstance(profile, ScheduleProfile)
        assert profile.kernel == "Hydro"
        assert profile.length == schedule.length
        assert len(profile.critical_issues) == dfg.multiplication_count()
        assert profile.rows == 8 and profile.cols == 8

    def test_profile_flags_immediate_dependents(self, mapper):
        kernel = matrix_multiplication(order=2)
        result = mapper.map_kernel(kernel, base_architecture())
        profile = extract_profile(result.base_schedule, result.dfg)
        # At least one product feeds an addition scheduled right after it.
        assert any(issue.has_immediate_dependent for issue in profile.critical_issues)

    def test_profile_of_multiplication_free_kernel_is_empty(self, mapper):
        kernel = get_kernel("SAD")
        schedule = mapper.base_schedule(kernel)
        profile = extract_profile(schedule, mapper.build_dfg(kernel))
        assert profile.critical_issues == ()
        assert profile.max_critical_per_cycle == 0

    def test_extract_profiles_batch(self, mapper, hydro_kernel, mvm_kernel):
        schedules = {
            "Hydro": mapper.base_schedule(hydro_kernel),
            "MVM": mapper.base_schedule(mvm_kernel),
        }
        dfgs = {"Hydro": mapper.build_dfg(hydro_kernel), "MVM": mapper.build_dfg(mvm_kernel)}
        profiles = extract_profiles(schedules, dfgs)
        assert set(profiles) == {"Hydro", "MVM"}

    def test_estimator_tracks_exact_rearrangement_stalls(self, mapper, hydro_kernel):
        """The fast estimate and the exact rearrangement agree on RS#1 pressure.

        The estimate only models the multiplier shortage itself (not the
        cascade of PE-occupancy conflicts the rearrangement also pays), so
        the two are compared qualitatively: both must report stalls on the
        under-provisioned RS#1 design and both must report none once the
        sharing capacity is generous (RS#3/RS#4).
        """
        schedule = mapper.base_schedule(hydro_kernel)
        profile = extract_profile(schedule, mapper.build_dfg(hydro_kernel))
        estimator = StallEstimator()
        estimates = {
            design: estimator.estimate_rs_stalls(profile, rs_architecture(design))
            for design in range(1, 5)
        }
        exact = {
            design: mapper.map_kernel(hydro_kernel, rs_architecture(design)).stall_cycles
            for design in range(1, 5)
        }
        assert estimates[1] > 0 and exact[1] > 0
        assert estimates[3] == 0 and exact[3] == 0
        assert estimates[4] == 0 and exact[4] == 0
        # The estimate is monotone in the sharing capacity.
        assert estimates[1] >= estimates[2] >= estimates[3] >= estimates[4]


class TestRSPMapper:
    def test_requires_base_reference(self):
        with pytest.raises(MappingError):
            RSPMapper(base=rs_architecture(1))

    def test_base_mapping_result_identity(self, mapper, mvm_kernel, base_arch):
        result = mapper.map_kernel(mvm_kernel, base_arch)
        assert isinstance(result, MappingResult)
        assert result.cycles == result.base_cycles
        assert result.stall_cycles == 0
        assert result.schedule is result.base_schedule
        assert result.cycle_overhead_vs_base == 0

    def test_base_schedule_is_cached(self, mapper, mvm_kernel):
        first = mapper.base_schedule(mvm_kernel)
        second = mapper.base_schedule(mvm_kernel)
        assert first is second

    def test_dimension_mismatch_rejected(self, mapper, mvm_kernel):
        small = rs_architecture(1, rows=4, cols=4)
        with pytest.raises(MappingError):
            mapper.map_kernel(mvm_kernel, small)

    def test_rearranged_schedule_valid_on_target(self, mapper, hydro_kernel):
        result = mapper.map_kernel(hydro_kernel, rsp_architecture(2))
        result.schedule.validate(result.dfg)
        assert result.architecture.name == "RSP#2"
        assert result.cycles >= result.base_cycles

    def test_context_generation_opt_in(self, mvm_kernel):
        with_context = RSPMapper(generate_contexts=True)
        result = with_context.map_kernel(mvm_kernel, rs_architecture(2))
        assert result.context is not None
        assert result.context.active_word_count() == len(result.schedule)

    def test_map_suite_shape(self, mapper, mvm_kernel, hydro_kernel):
        architectures = [base_architecture(), rs_architecture(2), rsp_architecture(2)]
        results = mapper.map_suite([mvm_kernel, hydro_kernel], architectures)
        assert set(results) == {"MVM", "Hydro"}
        for per_arch in results.values():
            assert set(per_arch) == {"Base", "RS#2", "RSP#2"}

    def test_iteration_override_changes_dfg_size(self, mapper, mvm_kernel):
        short = mapper.build_dfg(mvm_kernel, iterations=8)
        full = mapper.build_dfg(mvm_kernel)
        assert len(short) < len(full)

    def test_max_multiplications_metric_exposed(self, mapper, mvm_kernel):
        result = mapper.map_kernel(mvm_kernel, base_architecture())
        assert result.max_multiplications_per_cycle >= 1
