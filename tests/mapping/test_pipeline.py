"""Tests for the staged mapping pipeline and its artifact integration."""

from __future__ import annotations

import pytest

from repro.arch import base_architecture, rs_architecture, rsp_architecture
from repro.engine.artifacts import ArtifactStore
from repro.errors import MappingError
from repro.kernels import get_kernel
from repro.mapping import (
    PIPELINE_STAGES,
    STAGE_NAMES,
    MappingPipeline,
    RearrangedSchedule,
    architecture_fingerprint,
    dfg_fingerprint,
    stage_key,
)


@pytest.fixture(scope="module")
def mvm():
    return get_kernel("MVM")


class TestStageDeclarations:
    def test_stage_order_is_the_paper_flow(self):
        assert STAGE_NAMES == (
            "build_dfg",
            "base_schedule",
            "extract_profile",
            "rearrange",
            "generate_context",
        )

    def test_stage_io_chains(self):
        by_name = {stage.name: stage for stage in PIPELINE_STAGES}
        assert by_name["build_dfg"].output == "dfg"
        assert "dfg" in by_name["base_schedule"].inputs
        assert by_name["base_schedule"].output in by_name["extract_profile"].inputs
        assert by_name["rearrange"].output in by_name["generate_context"].inputs

    def test_only_build_dfg_is_non_persistent(self):
        transient = [stage.name for stage in PIPELINE_STAGES if not stage.persistent]
        assert transient == ["build_dfg"]


class TestFingerprints:
    def test_dfg_fingerprint_is_content_based(self, mvm):
        assert dfg_fingerprint(mvm.build()) == dfg_fingerprint(mvm.build())
        assert dfg_fingerprint(mvm.build(4)) != dfg_fingerprint(mvm.build(8))

    def test_architecture_fingerprint_ignores_the_name(self):
        named = rsp_architecture(2)
        renamed = named.with_name("whatever")
        assert architecture_fingerprint(named) == architecture_fingerprint(renamed)
        assert architecture_fingerprint(named) != architecture_fingerprint(rsp_architecture(3))

    def test_stage_keys_separate_stages_and_inputs(self):
        assert stage_key("a", x="1") != stage_key("b", x="1")
        assert stage_key("a", x="1") != stage_key("a", x="2")
        assert stage_key("a", x="1") == stage_key("a", x="1")


class TestPipelineBehaviour:
    def test_requires_base_reference(self):
        with pytest.raises(MappingError):
            MappingPipeline(base=rs_architecture(1))

    def test_rearrange_rejects_base_target(self, mvm):
        pipeline = MappingPipeline()
        with pytest.raises(MappingError):
            pipeline.rearrange_artifact(mvm, base_architecture())

    def test_run_matches_mapper_contract(self, mvm):
        pipeline = MappingPipeline()
        result = pipeline.run(mvm, rsp_architecture(2))
        assert result.kernel == "MVM"
        assert result.cycles >= result.base_cycles
        result.schedule.validate(result.dfg)

    def test_base_run_reuses_base_schedule_object(self, mvm):
        pipeline = MappingPipeline()
        result = pipeline.run(mvm, base_architecture())
        assert result.schedule is result.base_schedule
        assert result.stall_cycles == 0

    def test_in_memory_store_memoises_stages(self, mvm):
        pipeline = MappingPipeline()
        first = pipeline.base_schedule_artifact(mvm)
        second = pipeline.base_schedule_artifact(mvm)
        assert second.value is first.value
        assert not first.from_store and second.from_store
        assert pipeline.stats.timing("base_schedule").hits == 1
        assert pipeline.stats.timing("base_schedule").misses == 1

    def test_summary_restamped_with_target_name(self, mvm):
        pipeline = MappingPipeline()
        canonical = rsp_architecture(2)
        renamed = canonical.with_name("rsp(custom)")
        original = pipeline.rearrange_artifact(mvm, canonical)
        artifact = pipeline.rearrange_artifact(mvm, renamed)
        assert artifact.from_store  # structural fingerprint matched
        assert artifact.value.summary.architecture == "rsp(custom)"
        assert artifact.value.schedule.architecture.name == "rsp(custom)"
        # The rebound schedule is entry-identical to the stored one, which
        # keeps its original name for consumers using that spelling.
        assert original.value.schedule.architecture.name == "RSP#2"
        assert [e.name for e in artifact.value.schedule.operations()] == [
            e.name for e in original.value.schedule.operations()
        ]

    def test_stats_snapshot_diff(self, mvm):
        pipeline = MappingPipeline()
        pipeline.profile_artifact(mvm)
        snapshot = pipeline.stats.snapshot()
        pipeline.profile_artifact(mvm)
        delta = pipeline.stats.since(snapshot)
        assert delta["extract_profile"].hits == 1
        assert delta["extract_profile"].misses == 0
        assert "rearrange" not in delta


class TestPersistentPipeline:
    def test_warm_store_skips_scheduling_entirely(self, tmp_path, mvm):
        cold = MappingPipeline(store=ArtifactStore(tmp_path))
        cold_profile = cold.profile_artifact(mvm).value

        warm = MappingPipeline(store=ArtifactStore(tmp_path))
        warm_profile = warm.profile_artifact(mvm).value
        assert warm_profile == cold_profile
        # The profile was fetched by key; the schedule stage never ran.
        assert "base_schedule" not in warm.stats.stages
        assert warm.stats.timing("extract_profile").hits == 1
        assert warm.store.stats.hits == 1

    def test_warm_run_is_identical(self, tmp_path, mvm):
        target = rsp_architecture(4)
        cold = MappingPipeline(store=ArtifactStore(tmp_path), generate_contexts=True)
        cold_result = cold.run(mvm, target)

        warm = MappingPipeline(store=ArtifactStore(tmp_path), generate_contexts=True)
        warm_result = warm.run(mvm, target)

        assert warm_result.cycles == cold_result.cycles
        assert warm_result.stall_cycles == cold_result.stall_cycles
        assert warm_result.base_cycles == cold_result.base_cycles
        assert [
            (entry.name, entry.cycle, entry.row, entry.col, entry.shared_unit)
            for entry in warm_result.schedule.operations()
        ] == [
            (entry.name, entry.cycle, entry.row, entry.col, entry.shared_unit)
            for entry in cold_result.schedule.operations()
        ]
        assert (
            list(warm_result.context.active_words())
            == list(cold_result.context.active_words())
        )
        for stage in ("base_schedule", "rearrange", "generate_context"):
            assert warm.stats.timing(stage).misses == 0

    def test_context_restamped_for_structural_alias(self, tmp_path, mvm):
        canonical = rsp_architecture(2)
        renamed = canonical.with_name("rsp(custom)")
        store_dir = tmp_path / "ctx"
        MappingPipeline(store=ArtifactStore(store_dir), generate_contexts=True).run(
            mvm, canonical
        )
        warm = MappingPipeline(store=ArtifactStore(store_dir), generate_contexts=True)
        result = warm.run(mvm, renamed)
        assert warm.stats.timing("generate_context").hits == 1
        assert result.context.name == "MVM@rsp(custom)"
        assert result.schedule.architecture.name == "rsp(custom)"

    def test_build_dfg_stage_is_never_persisted(self, tmp_path, mvm):
        pipeline = MappingPipeline(store=ArtifactStore(tmp_path))
        pipeline.profile_artifact(mvm)
        stages_on_disk = {path.name for path in (tmp_path / "artifacts").iterdir()}
        assert "build_dfg" not in stages_on_disk
        assert stages_on_disk == {"base_schedule", "extract_profile"}

    def test_rearranged_artifact_value_shape(self, tmp_path, mvm):
        pipeline = MappingPipeline(store=ArtifactStore(tmp_path))
        artifact = pipeline.rearrange_artifact(mvm, rs_architecture(2))
        assert isinstance(artifact.value, RearrangedSchedule)
        summary = artifact.value.summary
        assert summary.cycles == artifact.value.schedule.length
        assert summary.base_cycles == pipeline.base_schedule_artifact(mvm).value.length
