"""Tests for the SQLite trace store: schema, guards, query helpers."""

from __future__ import annotations

import pytest

from repro.errors import TraceError
from repro.trace.db import (
    SCHEMA_VERSION,
    TRACE_DB_FILENAME,
    TraceDB,
    duration_summary,
    percentile,
)


def span(span_id, name="op", kind="span", start=0.0, duration=0.0, **attrs):
    return {
        "span_id": span_id,
        "parent_id": None,
        "name": name,
        "kind": kind,
        "start_ts": start,
        "duration_s": duration,
        "status": "ok",
        "pid": 1,
        "thread": "main",
        "attrs": attrs,
    }


# ----------------------------------------------------------------------
# The percentile convention
# ----------------------------------------------------------------------
def test_percentile_interpolates_linearly():
    assert percentile([], 0.5) == 0.0
    assert percentile([7.0], 0.95) == 7.0
    assert percentile([1.0, 2.0, 3.0, 4.0], 0.50) == 2.5
    assert percentile([1.0, 2.0, 3.0, 4.0], 0.0) == 1.0
    assert percentile([1.0, 2.0, 3.0, 4.0], 1.0) == 4.0
    assert percentile([4.0, 1.0, 3.0, 2.0], 0.50) == 2.5  # order-insensitive


def test_duration_summary_fields():
    stats = duration_summary([0.1, 0.2, 0.3, 0.4])
    assert stats["count"] == 4
    assert stats["total"] == pytest.approx(1.0)
    assert stats["mean"] == pytest.approx(0.25)
    assert stats["p50"] == pytest.approx(0.25)
    assert stats["max"] == pytest.approx(0.4)
    assert duration_summary([])["count"] == 0


# ----------------------------------------------------------------------
# Inserts and queries
# ----------------------------------------------------------------------
def test_insert_and_query_spans(tmp_path):
    with TraceDB(tmp_path / TRACE_DB_FILENAME) as db:
        db.insert_spans(
            [
                span("a-1", "wave", "wave", start=1.0, duration=0.5, suite="dsp"),
                span("a-2", "wave", "wave", start=2.0, duration=0.1, suite="h264"),
                span("a-3", "build_dfg", "stage", start=0.5, duration=0.9, hit=False),
            ]
        )
        assert db.span_count() == 3
        assert db.span_count("wave") == 2
        assert db.kind_counts() == {"stage": 1, "wave": 2}
        assert [s["span_id"] for s in db.spans()] == ["a-3", "a-1", "a-2"]  # start order
        assert [s["span_id"] for s in db.spans(kind="wave", limit=1)] == ["a-1"]
        assert db.spans()[0]["attrs"] == {"hit": False}
        assert db.get_meta("schema_version") == str(SCHEMA_VERSION)


def test_slowest_spans_and_aggregates(tmp_path):
    with TraceDB(tmp_path / "t.db") as db:
        db.insert_spans(
            [span(f"a-{i}", "stage_a", "stage", duration=0.1 * i) for i in range(1, 5)]
            + [span("b-1", "stage_b", "stage", duration=9.0)]
        )
        slow = db.slowest_spans(limit=2)
        assert [s["span_id"] for s in slow] == ["b-1", "a-4"]
        assert [s["name"] for s in db.slowest_spans(limit=9, kind="stage")][0] == "stage_b"
        aggregates = db.aggregates(kind="stage")
        assert aggregates["stage_a"]["count"] == 4
        assert aggregates["stage_a"]["p50"] == pytest.approx(0.25)
        assert aggregates["stage_b"]["max"] == pytest.approx(9.0)


def test_wave_timeline_filters_by_suite(tmp_path):
    with TraceDB(tmp_path / "t.db") as db:
        db.insert_spans(
            [
                span("a-1", "wave", "wave", start=1.0, suite="dsp", wave=0),
                span("a-2", "wave", "wave", start=2.0, suite="h264", wave=0),
                span("a-3", "wave", "wave", start=3.0, suite="dsp", wave=1),
            ]
        )
        assert [w["attrs"]["wave"] for w in db.wave_timeline("dsp")] == [0, 1]
        assert len(db.wave_timeline()) == 3


def test_counters_upsert_and_annotations(tmp_path):
    with TraceDB(tmp_path / "t.db") as db:
        db.add_counters({"wave.count": 2.0, "result.count": 5.0})
        db.add_counters({"wave.count": 1.0})
        assert db.counters() == {"result.count": 5.0, "wave.count": 3.0}
        assert db.counter("wave.count") == 3.0
        assert db.counter("missing") == 0.0
        db.insert_annotations([{"span_id": "a-1", "ts": 1.0, "message": "note", "attrs": {"k": 1}}])
        assert db.annotations("a-1")[0]["attrs"] == {"k": 1}
        assert db.annotations("other") == []


def test_insert_or_replace_dedupes_span_ids(tmp_path):
    # The id space is what makes this safe: dedupe by span_id means a
    # collision silently drops a row, which is why worker tracers must
    # persist their sequence across calls (see executor._worker_tracer).
    with TraceDB(tmp_path / "t.db") as db:
        db.insert_spans([span("a-1", duration=0.1)])
        db.insert_spans([span("a-1", duration=0.9)])
        assert db.span_count() == 1
        assert db.spans()[0]["duration_s"] == pytest.approx(0.9)


# ----------------------------------------------------------------------
# Write guards
# ----------------------------------------------------------------------
def test_readonly_requires_existing_file(tmp_path):
    with pytest.raises(TraceError, match="no trace database"):
        TraceDB(tmp_path / "missing.db", readonly=True)


def test_readonly_rejects_writes(tmp_path):
    path = tmp_path / "t.db"
    TraceDB(path).close()
    with TraceDB(path, readonly=True) as db:
        with pytest.raises(TraceError, match="read-only"):
            db.insert_spans([span("a-1")])
        with pytest.raises(TraceError, match="read-only"):
            db.add_counters({"c": 1.0})
        db.flush_wal()  # a no-op, not an error, on readonly handles


def test_foreign_pid_rejects_writes(tmp_path):
    with TraceDB(tmp_path / "t.db") as db:
        db._pid -= 1  # simulate a handle inherited across fork
        with pytest.raises(TraceError, match="single-writer"):
            db.insert_spans([span("a-1")])
        with pytest.raises(TraceError, match="ship spans through the parent"):
            db.add_counters({"c": 1.0})


def test_empty_batches_skip_the_write_guard(tmp_path):
    with TraceDB(tmp_path / "t.db", readonly=False) as db:
        db._pid -= 1
        assert db.insert_spans([]) == 0  # nothing to write, nothing to guard
        db.add_counters({})
        assert db.insert_annotations([]) == 0
