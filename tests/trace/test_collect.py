"""Tests for the collector layer: observers, the collector, backfill."""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.engine.executor import WaveObserver, WaveOutcome, WaveResult
from repro.engine.stream import EventLog
from repro.errors import TraceError
from repro.observers import MultiObserver, compose_observers
from repro.trace.collect import (
    TraceCollector,
    TracingWaveObserver,
    import_event_log,
    open_trace,
)
from repro.trace.db import TRACE_DB_FILENAME, TraceDB
from repro.trace.spans import NullTracer, Tracer, get_tracer


def evaluation(area=1.0, time_ns=1.0):
    return SimpleNamespace(area_slices=area, total_execution_time_ns=time_ns)


def result(index, source="computed", feasible=True, area=1.0, time_ns=1.0):
    return WaveResult(
        index=index,
        key=f"k{index}",
        label=f"cand-{index}",
        evaluation=evaluation(area, time_ns),
        source=source,
        feasible=feasible,
    )


# ----------------------------------------------------------------------
# TracingWaveObserver
# ----------------------------------------------------------------------
def test_tracing_observer_counts_waves_and_results():
    tracer = Tracer()
    observer = TracingWaveObserver(tracer, suite="dsp")
    observer.base_evaluated("base", evaluation(2.0, 2.0), "computed", True)
    observer.wave_started(0, job_count=3)
    observer.wave_finished(
        WaveOutcome(
            wave_index=0,
            results=(
                result(0, source="computed", feasible=True, area=1.0, time_ns=3.0),
                result(1, source="cache", feasible=True, area=3.0, time_ns=1.0),
                result(2, source="computed", feasible=False),
            ),
            rejected=((3, "k3"), (4, "k4")),
        )
    )
    batch = tracer.drain()
    assert batch.counters["wave.count"] == 1.0
    assert batch.counters["result.count"] == 4.0  # base + three wave results
    assert batch.counters["result.source.computed"] == 3.0
    assert batch.counters["result.source.cache"] == 1.0
    assert batch.counters["result.feasible"] == 3.0
    assert batch.counters["result.rejected"] == 2.0
    # base (2,2) enters the front, (1,3) and (3,1) both join it.
    assert batch.counters["frontier.updates"] == 3.0

    (wave_span,) = batch.spans
    assert wave_span["kind"] == "wave"
    assert wave_span["attrs"] == {
        "suite": "dsp",
        "wave": 0,
        "jobs": 3,
        "results": 3,
        "rejected": 2,
        "frontier_size": 3,
    }


def test_tracing_observer_tolerates_unmatched_wave_end():
    tracer = Tracer()
    observer = TracingWaveObserver(tracer, suite="dsp")
    observer.wave_finished(WaveOutcome(wave_index=7, results=()))
    batch = tracer.drain()
    assert batch.counters["wave.count"] == 1.0
    assert batch.spans == []  # no matching wave_started; no torn span


# ----------------------------------------------------------------------
# Observer composition
# ----------------------------------------------------------------------
class RecordingObserver(WaveObserver):
    def __init__(self):
        self.calls = []

    def wave_started(self, wave_index, job_count):
        self.calls.append(("started", wave_index, job_count))

    def wave_finished(self, outcome):
        self.calls.append(("finished", outcome.wave_index))

    def base_evaluated(self, key, evaluation, source, feasible):
        self.calls.append(("base", key, source, feasible))


def test_compose_observers_collapses_trivial_cases():
    assert compose_observers() is None
    assert compose_observers(None, None) is None
    single = RecordingObserver()
    assert compose_observers(None, single) is single


def test_compose_observers_fans_out_in_order():
    first, second = RecordingObserver(), RecordingObserver()
    combined = compose_observers(first, None, second)
    assert isinstance(combined, MultiObserver)
    combined.wave_started(0, 5)
    combined.base_evaluated("k", evaluation(), "computed", True)
    combined.wave_finished(WaveOutcome(wave_index=0, results=()))
    expected = [("started", 0, 5), ("base", "k", "computed", True), ("finished", 0)]
    assert first.calls == expected
    assert second.calls == expected


# ----------------------------------------------------------------------
# TraceCollector
# ----------------------------------------------------------------------
def test_collector_requires_exactly_one_target(tmp_path):
    with pytest.raises(TraceError, match="exactly one"):
        TraceCollector()
    with pytest.raises(TraceError, match="exactly one"):
        TraceCollector(tmp_path, db_path=tmp_path / "t.db")


def test_collector_lifecycle_installs_flushes_and_closes(tmp_path):
    collector = TraceCollector(tmp_path, campaign="smoke")
    assert isinstance(get_tracer(), NullTracer)
    collector.install()
    try:
        assert get_tracer() is collector.tracer
        collector.install()  # idempotent
        get_tracer().span("wave", kind="wave", suite="dsp").end()
        get_tracer().counter("wave.count")
        assert collector.flush() == 1
        assert collector.flush() == 0  # buffer drained
    finally:
        collector.uninstall()
    assert isinstance(get_tracer(), NullTracer)

    facts = collector.close()
    assert facts == collector.close()  # idempotent, cached
    assert facts["db"] == str(tmp_path / TRACE_DB_FILENAME)
    assert facts["spans"] == 1
    assert facts["counters"] == {"wave.count": 1}

    with open_trace(tmp_path) as db:
        assert db.get_meta("campaign") == "smoke"
        assert db.span_count("wave") == 1
        assert db.counter("wave.count") == 1.0


def test_collector_maybe_flush_honours_threshold(tmp_path):
    with TraceCollector(db_path=tmp_path / "t.db") as collector:
        collector.tracer.span("a").end()
        assert collector.maybe_flush(threshold=2) == 0
        collector.tracer.span("b").end()
        assert collector.maybe_flush(threshold=2) == 2


def test_collector_context_manager_restores_previous_tracer(tmp_path):
    outer = Tracer()
    from repro.trace.spans import set_tracer

    previous = set_tracer(outer)
    try:
        with TraceCollector(tmp_path) as collector:
            assert get_tracer() is collector.tracer
        assert get_tracer() is outer
    finally:
        set_tracer(previous)


# ----------------------------------------------------------------------
# EventLog backfill and target resolution
# ----------------------------------------------------------------------
def write_journal(path, waves=2, results_per_wave=3):
    with EventLog(path) as log:
        log.emit("campaign_start", campaign="backfill", suites=["dsp"])
        for wave in range(waves):
            log.emit("wave_start", suite="dsp", wave=wave, jobs=results_per_wave)
            for index in range(results_per_wave):
                log.emit(
                    "result",
                    suite="dsp",
                    wave=wave,
                    key=f"k{wave}-{index}",
                    label=f"cand-{index}",
                    source="computed" if index else "cache",
                    feasible=index % 2 == 0,
                    area_slices=float(index),
                    execution_time_ns=float(wave),
                )
            log.emit(
                "frontier_update", suite="dsp", key=f"k{wave}-0", vector=[1.0, 1.0], size=1
            )
            log.emit(
                "wave_end",
                suite="dsp",
                wave=wave,
                results=results_per_wave,
                rejected=1,
                frontier_size=1,
            )
        log.emit("campaign_end", campaign="backfill", waves=waves)


def test_import_event_log_rebuilds_spans_and_counters(tmp_path):
    journal = tmp_path / "events.jsonl"
    write_journal(journal, waves=2, results_per_wave=3)
    db, facts = import_event_log(journal)
    try:
        assert facts["waves"] == 2
        assert facts["results"] == 6
        assert facts["spans"] == 3  # one campaign span + two wave spans
        assert db.span_count("campaign") == 1
        assert db.span_count("wave") == 2
        assert db.counter("wave.count") == 2.0
        assert db.counter("result.count") == 6.0
        assert db.counter("result.source.cache") == 2.0
        assert db.counter("result.source.computed") == 4.0
        assert db.counter("result.feasible") == 4.0
        assert db.counter("frontier.updates") == 2.0
        campaign = db.spans(kind="campaign")[0]
        assert campaign["name"] == "backfill"
        waves = db.wave_timeline("dsp")
        assert [w["attrs"]["jobs"] for w in waves] == [3, 3]
        assert all(w["parent_id"] == campaign["span_id"] for w in waves)
        assert db.get_meta("imported_from") == str(journal)
    finally:
        db.close()


def test_open_trace_resolves_every_target_kind(tmp_path):
    # A directory with a trace.db -> readonly handle on it.
    traced = tmp_path / "traced"
    TraceCollector(traced).close()
    db = open_trace(traced)
    assert db.readonly
    db.close()

    # A bare .db file.
    db = open_trace(traced / TRACE_DB_FILENAME)
    assert db.readonly
    db.close()

    # A directory holding only an event journal -> in-memory backfill.
    streamed = tmp_path / "streamed"
    streamed.mkdir()
    write_journal(streamed / "events.jsonl", waves=1, results_per_wave=1)
    db = open_trace(streamed)
    assert db.path is None
    assert db.counter("wave.count") == 1.0
    db.close()

    # A bare journal file.
    db = open_trace(streamed / "events.jsonl")
    assert db.counter("result.count") == 1.0
    db.close()

    # Nothing usable.
    empty = tmp_path / "empty"
    empty.mkdir()
    with pytest.raises(TraceError, match="holds neither"):
        open_trace(empty)
    with pytest.raises(TraceError, match="no trace database"):
        open_trace(tmp_path / "nowhere")


def test_import_event_log_backfills_a_coordinator_journal(tmp_path):
    """A coordinator's events.jsonl opens waves with lease events (no
    wave_start): the backfill must still rebuild wave spans, and count
    grants and requeues into the lease counters the live tracer uses."""
    journal = tmp_path / "events.jsonl"
    with EventLog(journal) as log:
        log.emit("campaign_start", campaign="fleet", suites=["dsp"])
        log.emit("lease", suite="dsp", wave=0, lease="c-L1", worker="w-1", jobs=2)
        log.emit("requeue", suite="dsp", wave=0, lease="c-L1", worker="w-1", attempt=1)
        log.emit("lease", suite="dsp", wave=0, lease="c-L2", worker="w-2", jobs=2)
        log.emit("wave_end", suite="dsp", wave=0, results=2, lease="c-L2", worker="w-2")
        log.emit("campaign_end", campaign="fleet", waves=1)
    db, facts = import_event_log(journal)
    try:
        assert facts["waves"] == 1
        assert db.counter("lease.granted") == 2.0
        assert db.counter("lease.requeued") == 1.0
        assert db.span_count("wave") == 1
        expired = db.spans(kind="lease")
        assert len(expired) == 1
        assert expired[0]["attrs"]["lease"] == "c-L1"
        assert expired[0]["attrs"]["outcome"] == "expired"
        # The surviving lease's wave span parents under the campaign.
        wave = db.spans(kind="wave")[0]
        campaign = db.spans(kind="campaign")[0]
        assert wave["parent_id"] == campaign["span_id"]
    finally:
        db.close()
