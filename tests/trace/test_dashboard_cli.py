"""Tests for the ``python -m repro.trace`` dashboard CLI."""

from __future__ import annotations

import json

import pytest

from repro.trace.__main__ import build_parser, main
from repro.trace.collect import TraceCollector
from repro.trace.db import TRACE_DB_FILENAME


@pytest.fixture()
def traced_dir(tmp_path):
    """A small hand-traced run: one wave, stages, counters."""
    with TraceCollector(tmp_path, campaign="cli-smoke") as collector:
        tracer = collector.tracer
        with tracer.span("cli-smoke", kind="campaign", suites=1):
            with tracer.span("wave", kind="wave", suite="dsp", wave=0, jobs=2) as wave:
                wave.set("results", 2).set("rejected", 0).set("frontier_size", 1)
            tracer.record_span("build_dfg", kind="stage", duration_s=0.010, hit=False)
            tracer.record_span("build_dfg", kind="stage", duration_s=0.001, hit=True)
            tracer.record_span("base_schedule", kind="stage", duration_s=0.200, hit=False)
        tracer.counter("wave.count")
        tracer.counter("result.count", 2.0)
        tracer.counter("result.source.computed", 2.0)
        tracer.counter("result.feasible", 2.0)
        tracer.counter("frontier.updates", 1.0)
        tracer.counter("store.eval.hit", 3.0)
        tracer.counter("store.eval.miss", 1.0)
    return tmp_path


def test_parser_requires_a_command(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
    capsys.readouterr()


def test_summary_renders_counts_and_stage_table(traced_dir, capsys):
    assert main(["summary", str(traced_dir)]) == 0
    out = capsys.readouterr().out
    assert "campaign 'cli-smoke'" in out
    assert "waves: 1" in out
    assert "results: 2 (2 computed)" in out
    assert "frontier: 1 update(s)" in out
    assert "evals 3h/1m (75.0%)" in out
    assert "build_dfg" in out and "base_schedule" in out


def test_summary_json_reproduces_db_counts(traced_dir, capsys):
    assert main(["summary", str(traced_dir), "--json"]) == 0
    facts = json.loads(capsys.readouterr().out)
    assert facts["campaign"] == "cli-smoke"
    assert facts["spans"] == 5
    assert facts["kinds"] == {"campaign": 1, "stage": 3, "wave": 1}
    assert facts["waves"] == 1
    assert facts["wave_spans"] == 1
    assert facts["results"] == 2
    assert facts["result_sources"] == {"computed": 2}
    assert facts["frontier_sizes"] == [1]
    assert facts["eval_store"] == {"hits": 3, "misses": 1, "stores": 0}


def test_tail_and_slow_render_span_tables(traced_dir, capsys):
    assert main(["tail", str(traced_dir), "-n", "2"]) == 0
    tail = capsys.readouterr().out
    assert tail.count("\n") >= 3  # header + two span rows

    assert main(["slow", str(traced_dir), "--kind", "stage", "-n", "1"]) == 0
    slow = capsys.readouterr().out
    assert "base_schedule" in slow  # the 200ms stage dominates
    assert "build_dfg" not in slow


def test_stages_table_splits_hits_and_misses(traced_dir, capsys):
    assert main(["stages", str(traced_dir)]) == 0
    out = capsys.readouterr().out
    lines = [line for line in out.splitlines() if line.startswith("build_dfg")]
    assert len(lines) == 1
    columns = lines[0].split()
    assert columns[1:4] == ["2", "1", "1"]  # n, hits, misses


def test_export_writes_the_full_document(traced_dir, tmp_path, capsys):
    output = tmp_path / "out" / "trace.json"
    output.parent.mkdir()
    assert main(["export", str(traced_dir), "--output", str(output)]) == 0
    assert "exported 5 span(s)" in capsys.readouterr().out
    document = json.loads(output.read_text())
    assert document["campaign"] == "cli-smoke"
    assert len(document["spans"]) == 5
    assert document["counters"]["result.count"] == 2.0

    assert main(["export", str(traced_dir / TRACE_DB_FILENAME)]) == 0
    stdout_document = json.loads(capsys.readouterr().out)
    assert stdout_document["spans"] == document["spans"]


def test_missing_target_exits_2(tmp_path, capsys):
    assert main(["summary", str(tmp_path / "nope")]) == 2
    assert "error:" in capsys.readouterr().err


def test_empty_db_renders_placeholders(tmp_path, capsys):
    TraceCollector(tmp_path).close()
    assert main(["tail", str(tmp_path)]) == 0
    assert "no spans" in capsys.readouterr().out
    assert main(["slow", str(tmp_path)]) == 0
    assert "no spans" in capsys.readouterr().out
    assert main(["stages", str(tmp_path)]) == 0
    assert "no stage spans" in capsys.readouterr().out
