"""Multiprocess tracing: forked workers ship spans through the parent.

The process backend is the hard case for the trace DB's single-writer
rule: eval spans are measured inside pool workers, returned through the
pool, ingested by the parent's tracer, and flushed from the parent — the
workers never touch SQLite.  These tests prove the resulting DB is
consistent (no torn or silently replaced rows) and that its counts
reproduce the campaign report exactly, which is also what the CI
trace-smoke job checks via ``python -m repro.trace summary --json``.
"""

from __future__ import annotations

import os

import pytest

from repro.engine.jobs import CampaignSpec
from repro.engine.runner import CampaignRunner
from repro.trace.__main__ import _summary_facts
from repro.trace.db import TRACE_DB_FILENAME, TraceDB


@pytest.fixture(scope="module")
def traced_process_campaign(tmp_path_factory):
    spec = CampaignSpec(
        name="traced-process",
        suites=("h264",),
        max_rows_shared=1,
        max_cols_shared=1,
        workers=2,
        backend="process",
        chunk_size=2,
    )
    trace_dir = tmp_path_factory.mktemp("trace")
    cache_dir = tmp_path_factory.mktemp("cache")
    runner = CampaignRunner(spec, cache_dir=cache_dir, trace_dir=trace_dir)
    report, results = runner.run()
    return runner, report, results, trace_dir


@pytest.fixture(scope="module")
def trace_db(traced_process_campaign):
    _, _, _, trace_dir = traced_process_campaign
    with TraceDB(trace_dir / TRACE_DB_FILENAME, readonly=True) as db:
        yield db


def test_trace_db_exists_and_report_carries_the_block(traced_process_campaign):
    runner, report, _, trace_dir = traced_process_campaign
    db_path = trace_dir / TRACE_DB_FILENAME
    assert db_path.is_file() and db_path.stat().st_size > 0
    assert report.trace["db"] == str(db_path)
    assert report.trace["spans"] > 0
    # The runner's post-run summary may only add late spans on top of the
    # report's snapshot (e.g. store /stats requests), never lose any.
    assert runner.trace_summary["spans"] >= report.trace["spans"]


def test_span_counts_reproduce_the_report(traced_process_campaign, trace_db):
    _, report, _, _ = traced_process_campaign
    assert trace_db.span_count() == report.trace["spans"]
    assert trace_db.span_count("wave") == report.waves
    assert trace_db.counter("wave.count") == report.waves
    assert trace_db.counter("result.count") == report.total_jobs
    assert trace_db.counter("store.eval.hit") == report.cache_hits
    assert trace_db.counter("store.eval.miss") == report.cache_misses
    assert trace_db.span_count("campaign") == 1
    assert trace_db.span_count("suite") == 1
    # The base evaluation is computed in the parent before any wave is
    # dispatched, so wave results account for every job except that one.
    wave_results = sum(span["attrs"]["results"] for span in trace_db.spans(kind="wave"))
    assert wave_results == report.total_jobs - 1


def test_summary_facts_match_report_counts(traced_process_campaign, trace_db):
    _, report, _, _ = traced_process_campaign
    facts = _summary_facts(trace_db)
    assert facts["campaign"] == "traced-process"
    assert facts["waves"] == report.waves
    assert facts["results"] == report.total_jobs
    assert facts["eval_store"]["hits"] == report.cache_hits
    assert facts["eval_store"]["misses"] == report.cache_misses
    assert sum(facts["result_sources"].values()) == report.total_jobs


def test_worker_eval_spans_survive_the_round_trip(trace_db):
    """Eval spans are measured in forked workers and shipped back whole."""
    evals = trace_db.spans(kind="eval")
    assert evals  # the cold cache forces dispatched waves
    parent = os.getpid()
    worker_pids = {span["pid"] for span in evals}
    assert parent not in worker_pids  # measured in the pool, not the parent
    # No torn or replaced rows: ids unique, every span fully populated.
    ids = [span["span_id"] for span in trace_db.spans()]
    assert len(ids) == len(set(ids))
    for span in evals:
        assert span["duration_s"] >= 0.0
        assert span["status"] == "ok"
        assert span["attrs"]["jobs"] >= 1
        assert span["span_id"].startswith(f"{span['pid']:x}-")


def test_wave_spans_nest_under_their_suite(trace_db):
    (suite_span,) = trace_db.spans(kind="suite")
    (campaign_span,) = trace_db.spans(kind="campaign")
    assert suite_span["parent_id"] == campaign_span["span_id"]
    waves = trace_db.spans(kind="wave")
    assert waves
    assert all(span["parent_id"] == suite_span["span_id"] for span in waves)


def test_stage_spans_mirror_the_mapping_stage_stats(traced_process_campaign, trace_db):
    _, report, _, _ = traced_process_campaign
    for stage, timing in report.mapping_stages.items():
        stage_spans = [span for span in trace_db.spans(kind="stage") if span["name"] == stage]
        assert len(stage_spans) == timing["hits"] + timing["misses"]
        assert sum(1 for span in stage_spans if span["attrs"]["hit"]) == timing["hits"]
