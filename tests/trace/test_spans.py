"""Tests for the span tracer: nesting, counters, drains, the null default."""

from __future__ import annotations

import threading

import pytest

from repro.trace.spans import (
    NULL_SPAN,
    STATUS_ERROR,
    STATUS_OK,
    NullTracer,
    TraceBatch,
    Tracer,
    get_tracer,
    set_tracer,
)


# ----------------------------------------------------------------------
# Span production and nesting
# ----------------------------------------------------------------------
def test_spans_nest_and_parent_automatically():
    tracer = Tracer()
    with tracer.span("outer", kind="suite") as outer:
        assert tracer.current_span_id == outer.span_id
        with tracer.span("inner", kind="wave") as inner:
            assert inner.parent_id == outer.span_id
        assert tracer.current_span_id == outer.span_id
    assert tracer.current_span_id is None

    batch = tracer.drain()
    assert [record["name"] for record in batch.spans] == ["inner", "outer"]
    assert batch.spans[0]["parent_id"] == batch.spans[1]["span_id"]
    assert batch.spans[1]["parent_id"] is None


def test_span_ids_are_pid_prefixed_and_unique():
    tracer = Tracer()
    for _ in range(3):
        tracer.span("s").end()
    ids = [record["span_id"] for record in tracer.drain().spans]
    assert len(set(ids)) == 3
    assert all(span_id.startswith(f"{tracer.pid:x}-") for span_id in ids)


def test_span_records_error_status_on_exception():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("boom"):
            raise ValueError("no")
    (record,) = tracer.drain().spans
    assert record["status"] == STATUS_ERROR


def test_span_end_is_idempotent_and_accepts_status():
    tracer = Tracer()
    span = tracer.span("once")
    span.end(STATUS_ERROR)
    span.end(STATUS_OK)  # second end: no effect, no second record
    batch = tracer.drain()
    assert len(batch.spans) == 1
    assert batch.spans[0]["status"] == STATUS_ERROR


def test_span_attributes_via_kwargs_and_set():
    tracer = Tracer()
    span = tracer.span("attrs", kind="stage", suite="dsp")
    span.set("jobs", 4).set("hit", False)
    span.end()
    (record,) = tracer.drain().spans
    assert record["kind"] == "stage"
    assert record["attrs"] == {"suite": "dsp", "jobs": 4, "hit": False}
    assert record["duration_s"] >= 0.0


def test_record_span_parents_to_the_open_span():
    tracer = Tracer()
    with tracer.span("parent") as parent:
        tracer.record_span("measured", kind="stage", duration_s=0.25, hit=True)
    records = {record["name"]: record for record in tracer.drain().spans}
    assert records["measured"]["parent_id"] == parent.span_id
    assert records["measured"]["duration_s"] == 0.25
    assert records["measured"]["start_ts"] <= records["parent"]["start_ts"] + 1.0


# ----------------------------------------------------------------------
# Counters, annotations, drains
# ----------------------------------------------------------------------
def test_counters_aggregate_until_drained():
    tracer = Tracer()
    tracer.counter("wave.count")
    tracer.counter("wave.count")
    tracer.counter("result.count", 3.0)
    batch = tracer.drain()
    assert batch.counters == {"wave.count": 2.0, "result.count": 3.0}
    assert tracer.drain().counters == {}  # drained clean
    assert tracer.counter_increments == 3  # lifetime total survives drains


def test_drain_is_atomic_and_resets_buffers():
    tracer = Tracer()
    tracer.span("a").end()
    tracer.annotate("note", detail=1)
    first = tracer.drain()
    assert bool(first)
    assert len(first.spans) == 1
    assert first.annotations[0]["message"] == "note"
    second = tracer.drain()
    assert not bool(second)
    assert isinstance(second, TraceBatch)


def test_ingest_adopts_foreign_records():
    tracer = Tracer()
    foreign = [
        {"span_id": "dead-1", "parent_id": None, "name": "w", "kind": "eval",
         "start_ts": 0.0, "duration_s": 0.1, "status": "ok", "pid": 1, "thread": "x",
         "attrs": {}},
    ]
    assert tracer.ingest(foreign) == 1
    assert tracer.ingest([]) == 0
    assert tracer.pending == 1
    assert tracer.drain().spans == foreign
    assert tracer.spans_recorded == 1


def test_concurrent_threads_record_without_loss():
    tracer = Tracer()

    def work(index: int) -> None:
        for step in range(50):
            with tracer.span(f"t{index}", kind="span", step=step):
                tracer.counter("steps")

    threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    batch = tracer.drain()
    assert len(batch.spans) == 200
    assert len({record["span_id"] for record in batch.spans}) == 200
    assert batch.counters["steps"] == 200.0
    # Per-thread stacks: no span ever parented across threads at top level.
    assert all(record["parent_id"] is None for record in batch.spans)


# ----------------------------------------------------------------------
# The null default and installation
# ----------------------------------------------------------------------
def test_null_tracer_is_inert():
    null = NullTracer()
    assert not null.active
    assert null.span("x", jobs=1) is NULL_SPAN
    with null.span("y") as span:
        span.set("k", "v")
    null.record_span("z", duration_s=1.0)
    null.counter("c")
    assert null.ingest([{"span_id": "a"}]) == 0
    assert not null.drain()
    assert null.pending == 0
    assert null.current_span_id is None


def test_set_tracer_installs_and_restores():
    assert isinstance(get_tracer(), NullTracer)
    live = Tracer()
    previous = set_tracer(live)
    try:
        assert get_tracer() is live
        assert get_tracer().active
    finally:
        set_tracer(previous)
    assert isinstance(get_tracer(), NullTracer)
