"""Tests for the incremental Pareto frontier and the one-shot sweep."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.frontier import ParetoFrontier, pareto_front_indices


def naive_front_indices(vectors):
    """The seed's O(n²) all-pairs scan, kept as the reference semantics."""

    def dominates(a, b):
        return all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b))

    return [
        index
        for index, vector in enumerate(vectors)
        if not any(
            other_index != index and dominates(other, vector)
            for other_index, other in enumerate(vectors)
        )
    ]


# ----------------------------------------------------------------------
# pareto_front_indices (one-shot)
# ----------------------------------------------------------------------
def test_front_indices_simple():
    vectors = [(1, 4), (2, 2), (4, 1), (3, 3), (5, 5)]
    assert pareto_front_indices(vectors) == [0, 1, 2]


def test_front_indices_empty():
    assert pareto_front_indices([]) == []


def test_front_indices_duplicates_all_kept():
    vectors = [(1, 1), (1, 1), (2, 2), (1, 1)]
    assert pareto_front_indices(vectors) == [0, 1, 3]


def test_front_indices_equal_x_groups():
    # Within an equal-x group only the minimal-y points survive.
    vectors = [(1, 5), (1, 3), (1, 3), (2, 2), (2, 4)]
    assert pareto_front_indices(vectors) == [1, 2, 3]


def test_front_indices_rejects_ragged_vectors():
    with pytest.raises(ValueError):
        pareto_front_indices([(1, 2), (1, 2, 3)])


def test_front_indices_three_objectives():
    vectors = [(1, 1, 5), (1, 5, 1), (5, 1, 1), (2, 2, 2), (6, 6, 6)]
    assert pareto_front_indices(vectors) == [0, 1, 2, 3]


vectors_2d = st.lists(
    st.tuples(st.integers(0, 30), st.integers(0, 30)), min_size=0, max_size=40
)
vectors_3d = st.lists(
    st.tuples(st.integers(0, 12), st.integers(0, 12), st.integers(0, 12)),
    min_size=0,
    max_size=30,
)


@given(vectors_2d)
@settings(max_examples=120, deadline=None)
def test_sweep_matches_naive_scan_2d(vectors):
    assert pareto_front_indices(vectors) == naive_front_indices(vectors)


@given(vectors_3d)
@settings(max_examples=80, deadline=None)
def test_incremental_matches_naive_scan_3d(vectors):
    assert pareto_front_indices(vectors) == naive_front_indices(vectors)


# ----------------------------------------------------------------------
# ParetoFrontier (streaming)
# ----------------------------------------------------------------------
def test_streaming_insertion_keeps_only_non_dominated():
    frontier = ParetoFrontier()
    assert frontier.add((2, 2), "a")
    assert not frontier.add((3, 3), "dominated")
    assert frontier.add((1, 4), "b")
    assert frontier.add((4, 1), "c")
    assert sorted(frontier.items()) == ["a", "b", "c"]


def test_streaming_insertion_evicts_newly_dominated():
    frontier = ParetoFrontier()
    frontier.add((3, 3), "old")
    frontier.add((1, 1), "better")
    assert frontier.items() == ["better"]
    assert frontier.vectors() == [(1, 1)]


def test_duplicates_accumulate():
    frontier = ParetoFrontier()
    assert frontier.add((2, 2), "first")
    assert frontier.add((2, 2), "second")
    assert len(frontier) == 2
    assert not frontier.dominated((2, 2))


def test_dominated_query():
    frontier = ParetoFrontier()
    frontier.add((2, 2))
    assert frontier.dominated((3, 2))
    assert frontier.dominated((2, 3))
    assert not frontier.dominated((2, 2))
    assert not frontier.dominated((1, 5))


def test_min_second_objective_query():
    frontier = ParetoFrontier()
    frontier.add((1, 9))
    frontier.add((5, 4))
    frontier.add((8, 2))
    assert frontier.min_second_objective_at_or_below(0.5) == float("inf")
    assert frontier.min_second_objective_at_or_below(1) == 9
    assert frontier.min_second_objective_at_or_below(6) == 4
    assert frontier.min_second_objective_at_or_below(100) == 2


def test_objective_arity_is_checked():
    frontier = ParetoFrontier(num_objectives=2)
    with pytest.raises(ValueError):
        frontier.add((1, 2, 3))
    with pytest.raises(ValueError):
        ParetoFrontier(num_objectives=0)
    with pytest.raises(ValueError):
        ParetoFrontier(num_objectives=3).min_second_objective_at_or_below(1.0)


def test_general_dimension_frontier():
    frontier = ParetoFrontier(num_objectives=3)
    assert frontier.add((1, 1, 5), "a")
    assert frontier.add((5, 1, 1), "b")
    assert not frontier.add((6, 2, 2), "dominated-by-b")
    assert frontier.add((0, 0, 0), "sweeps-all")
    assert frontier.items() == ["sweeps-all"]


@given(vectors_2d)
@settings(max_examples=120, deadline=None)
def test_streaming_frontier_matches_batch_front_set(vectors):
    """Feeding points one by one yields exactly the batch front's vector set."""
    frontier = ParetoFrontier()
    for index, vector in enumerate(vectors):
        frontier.add(vector, index)
    expected = sorted(tuple(vectors[i]) for i in pareto_front_indices(vectors))
    assert sorted(frontier.vectors()) == expected


# ----------------------------------------------------------------------
# Bulk insertion (add_many)
# ----------------------------------------------------------------------
def test_add_many_empty_is_noop():
    frontier = ParetoFrontier()
    frontier.add((1, 1))
    assert frontier.add_many([]) == 0
    assert frontier.vectors() == [(1, 1)]


def test_add_many_on_empty_frontier_builds_the_front():
    frontier = ParetoFrontier()
    added = frontier.add_many([(1, 4), (2, 2), (4, 1), (3, 3), (5, 5)])
    assert frontier.vectors() == [(1, 4), (2, 2), (4, 1)]
    assert added == 3


def test_add_many_matches_sequential_with_existing_members():
    vectors = [(2, 9), (7, 3), (5, 5)]
    incoming = [(1, 10), (5, 4), (6, 6), (5, 4), (7, 2), (3, 8)]
    sequential = ParetoFrontier()
    bulk = ParetoFrontier()
    for vector in vectors:
        sequential.add(vector)
        bulk.add(vector)
    for vector in incoming:
        sequential.add(vector)
    bulk.add_many(incoming)
    assert bulk.vectors() == sequential.vectors()


def test_add_many_keeps_duplicates():
    frontier = ParetoFrontier()
    frontier.add((2, 2))
    added = frontier.add_many([(2, 2), (2, 2), (3, 3)])
    assert frontier.vectors() == [(2, 2), (2, 2), (2, 2)]
    assert added == 2


def test_add_many_carries_items():
    frontier = ParetoFrontier()
    frontier.add((5, 1), item="old")
    frontier.add_many([(1, 5), (3, 3), (4, 4)], items=["a", "b", "c"])
    assert dict(zip(frontier.vectors(), frontier.items())) == {
        (1, 5): "a",
        (3, 3): "b",
        (5, 1): "old",
    }


def test_add_many_rejects_misaligned_items():
    with pytest.raises(ValueError):
        ParetoFrontier().add_many([(1, 1), (2, 2)], items=["only-one"])


def test_add_many_counts_only_final_survivors():
    frontier = ParetoFrontier()
    # (2, 2) dominates (3, 3) within the same batch: only one survives.
    assert frontier.add_many([(3, 3), (2, 2)]) == 1
    assert frontier.vectors() == [(2, 2)]


def test_add_many_three_objectives_matches_sequential():
    incoming = [(1, 1, 5), (1, 5, 1), (5, 1, 1), (2, 2, 2), (6, 6, 6), (2, 2, 2)]
    sequential = ParetoFrontier(num_objectives=3)
    bulk = ParetoFrontier(num_objectives=3)
    for vector in incoming:
        sequential.add(vector)
    added = bulk.add_many(incoming)
    assert sorted(bulk.vectors()) == sorted(sequential.vectors())
    assert added == len(bulk.vectors())


def test_add_many_preserves_query_invariants():
    frontier = ParetoFrontier()
    frontier.add_many([(1, 9), (3, 5), (6, 2), (4, 4), (9, 1)])
    assert frontier.dominated((5, 5))
    assert not frontier.dominated((1, 9))
    assert frontier.min_second_objective_at_or_below(4) == 4
    assert frontier.min_second_objective_at_or_below(0.5) == float("inf")
    # Subsequent incremental adds still work on the rebuilt lists.
    assert frontier.add((0.5, 10))
    assert not frontier.add((10, 10))
