"""Tests for the evaluation engine: backends, cache integration, early reject."""

from __future__ import annotations

import pytest

from repro.core.exploration import (
    ExplorationConstraints,
    RSPDesignSpaceExplorer,
    is_feasible,
)
from repro.core.rsp_params import enumerate_design_space, paper_parameters
from repro.core.stalls import CriticalOpIssue, ScheduleProfile
from repro.engine.cache import EvaluationCache
from repro.engine.executor import (
    EvaluationEngine,
    ExecutorConfig,
    run_exploration,
)
from repro.engine.jobs import EvaluationJob
from repro.errors import ExplorationError


def synthetic_profiles() -> dict:
    heavy_issues = [
        CriticalOpIssue(cycle=cycle, row=index % 8, col=index // 8, iteration=index,
                        has_immediate_dependent=True)
        for cycle in range(4)
        for index in range(16)
    ]
    heavy = ScheduleProfile(kernel="heavy", length=12, critical_issues=tuple(heavy_issues),
                            rows=8, cols=8)
    light = ScheduleProfile(kernel="light", length=20, critical_issues=(), rows=8, cols=8)
    return {"heavy": heavy, "light": light}


@pytest.fixture(scope="module")
def explorer():
    return RSPDesignSpaceExplorer(synthetic_profiles())


@pytest.fixture(scope="module")
def serial_reference(explorer):
    return run_exploration(explorer, config=ExecutorConfig()).result


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------
def test_executor_config_validation():
    with pytest.raises(ExplorationError):
        ExecutorConfig(backend="gpu")
    with pytest.raises(ExplorationError):
        ExecutorConfig(workers=0)
    with pytest.raises(ExplorationError):
        ExecutorConfig(chunk_size=0)


def test_single_worker_resolves_to_serial():
    assert ExecutorConfig(backend="process", workers=1).resolved_backend == "serial"
    assert ExecutorConfig(backend="process", workers=3).resolved_backend == "process"


# ----------------------------------------------------------------------
# Backend parity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["thread", "process"])
def test_parallel_backends_match_serial(explorer, serial_reference, backend):
    config = ExecutorConfig(backend=backend, workers=2, chunk_size=3)
    result = run_exploration(explorer, config=config).result
    assert [e.parameters for e in result.evaluated] == [
        e.parameters for e in serial_reference.evaluated
    ]
    assert [e.area_slices for e in result.evaluated] == [
        e.area_slices for e in serial_reference.evaluated
    ]
    assert [e.total_estimated_cycles for e in result.evaluated] == [
        e.total_estimated_cycles for e in serial_reference.evaluated
    ]
    assert [e.parameters for e in result.pareto] == [
        e.parameters for e in serial_reference.pareto
    ]
    assert result.selected.parameters == serial_reference.selected.parameters


def test_engine_matches_explorer_facade(explorer, serial_reference):
    facade = explorer.explore()
    assert [e.parameters for e in facade.evaluated] == [
        e.parameters for e in serial_reference.evaluated
    ]
    assert facade.selected.parameters == serial_reference.selected.parameters


# ----------------------------------------------------------------------
# Cache integration
# ----------------------------------------------------------------------
def test_second_run_is_fully_cached(explorer, tmp_path):
    cache = EvaluationCache(tmp_path / "evals.jsonl")
    first = run_exploration(explorer, cache=cache)
    assert first.stats.cache_hits == 0
    assert first.stats.cache_misses > 0

    warm = EvaluationCache(tmp_path / "evals.jsonl")
    second = run_exploration(explorer, cache=warm)
    assert second.stats.cache_misses == 0
    assert second.stats.cache_hits == first.stats.cache_misses
    assert second.stats.cache_hit_rate == 1.0
    assert second.result.selected.parameters == first.result.selected.parameters
    assert [e.area_slices for e in second.result.evaluated] == [
        e.area_slices for e in first.result.evaluated
    ]


def test_cache_is_shared_across_overlapping_grids(explorer, tmp_path):
    cache = EvaluationCache(tmp_path / "evals.jsonl")
    small = enumerate_design_space(max_rows_shared=1, max_cols_shared=1)
    run_exploration(explorer, candidates=small, cache=cache)

    large = enumerate_design_space(max_rows_shared=2, max_cols_shared=2)
    outcome = run_exploration(explorer, candidates=large, cache=cache)
    # Every candidate of the small grid (plus the base point) is a hit.
    assert outcome.stats.cache_hits >= len(small)


def test_evaluate_job_uses_cache(explorer, tmp_path):
    engine = EvaluationEngine(explorer, cache=EvaluationCache(tmp_path / "evals.jsonl"))
    job = EvaluationJob(paper_parameters(2, pipelined=True))
    first = engine.evaluate_job(job)
    second = engine.evaluate_job(job)
    assert engine.cache.stats.hits == 1
    assert first.area_slices == second.area_slices


# ----------------------------------------------------------------------
# Early reject
# ----------------------------------------------------------------------
def test_early_reject_preserves_front_and_selection(explorer, serial_reference):
    outcome = run_exploration(explorer, early_reject=True)
    assert outcome.stats.early_rejected == len(outcome.rejected)
    assert [e.parameters for e in outcome.result.pareto] == [
        e.parameters for e in serial_reference.pareto
    ]
    assert outcome.result.selected.parameters == serial_reference.selected.parameters
    # Rejected candidates are genuinely dominated: their exact evaluation is
    # beaten by a feasible point of the reference run.
    reference_by_parameters = {
        e.parameters: e for e in serial_reference.evaluated
    }
    for parameters in outcome.rejected:
        exact = explorer.evaluate(parameters)
        assert any(
            feasible.area_slices <= exact.area_slices
            and feasible.total_execution_time_ns < exact.total_execution_time_ns
            for feasible in serial_reference.feasible
        ), parameters
    assert len(outcome.result.evaluated) + len(outcome.rejected) == len(
        serial_reference.evaluated
    )
    assert reference_by_parameters  # sanity: reference evaluated something


def test_stats_account_for_every_job(explorer):
    outcome = run_exploration(explorer, config=ExecutorConfig(chunk_size=5))
    stats = outcome.stats
    non_base = [c for c in enumerate_design_space() if c.kind != "base"]
    # Distinct jobs: the non-base candidates plus the single base point
    # ("base" entries in the candidate list reuse the one evaluation).
    assert stats.total_jobs == len(non_base) + 1
    # No cache, no reject: every distinct job is evaluated exactly once.
    assert stats.evaluated == stats.total_jobs
    assert stats.wall_seconds > 0


def test_cache_hits_feed_the_reject_frontier(explorer, tmp_path):
    cache = EvaluationCache(tmp_path / "evals.jsonl")
    small = enumerate_design_space(max_rows_shared=1, max_cols_shared=1)
    run_exploration(explorer, candidates=small, cache=cache)

    large = enumerate_design_space(max_rows_shared=2, max_cols_shared=2)
    cold = run_exploration(explorer, candidates=large, early_reject=True)
    warm = run_exploration(explorer, candidates=large, cache=cache, early_reject=True)
    # Cached feasible points enter the frontier before any dispatch, so the
    # partially warm run prunes at least as hard as the cold one, and both
    # agree with the exact sweep on the outcome.
    assert warm.stats.early_rejected >= cold.stats.early_rejected
    exact = run_exploration(explorer, candidates=large)
    assert warm.result.selected.parameters == exact.result.selected.parameters
    assert [e.parameters for e in warm.result.pareto] == [
        e.parameters for e in exact.result.pareto
    ]


def test_feasibility_helper_matches_method(explorer):
    result = explorer.explore()
    constraints = ExplorationConstraints()
    for evaluation in result.evaluated:
        assert is_feasible(evaluation, result.base, constraints) == explorer._is_feasible(
            evaluation, result.base, constraints
        )


# ----------------------------------------------------------------------
# Vectorized batch path
# ----------------------------------------------------------------------
def test_batch_path_engages_and_matches_scalar(explorer):
    pytest.importorskip("numpy")
    scalar = run_exploration(explorer, config=ExecutorConfig(batch=False))
    batch = run_exploration(explorer, config=ExecutorConfig())
    assert scalar.stats.batch_evaluations == 0
    # The base point is evaluated once up front through the scalar
    # single-job path; every wave-dispatched candidate is batched.
    assert batch.stats.batch_evaluations == batch.stats.evaluated - 1 > 0
    # Full dataclass equality: same parameters, architectures, floats and
    # stall dictionaries — the batch path is bit-identical, not just close.
    assert batch.result.evaluated == scalar.result.evaluated
    assert batch.result.feasible == scalar.result.feasible
    assert batch.result.pareto == scalar.result.pareto
    assert batch.result.selected == scalar.result.selected


def test_batch_path_engages_on_thread_backend(explorer):
    pytest.importorskip("numpy")
    config = ExecutorConfig(backend="thread", workers=2, chunk_size=3)
    outcome = run_exploration(explorer, config=config)
    assert outcome.stats.batch_evaluations == outcome.stats.evaluated - 1 > 0
    scalar = run_exploration(explorer, config=ExecutorConfig(batch=False))
    assert outcome.result.evaluated == scalar.result.evaluated


def test_batch_path_disabled_for_process_backend(explorer):
    config = ExecutorConfig(backend="process", workers=2, chunk_size=8)
    outcome = run_exploration(explorer, config=config)
    assert outcome.stats.batch_evaluations == 0
    assert outcome.stats.evaluated > 0


def test_batch_path_skips_cache_hits(explorer, tmp_path):
    pytest.importorskip("numpy")
    cache = EvaluationCache(tmp_path / "evals.jsonl")
    cold = run_exploration(explorer, cache=cache)
    assert cold.stats.batch_evaluations == cold.stats.evaluated - 1 > 0

    warm = EvaluationCache(tmp_path / "evals.jsonl")
    second = run_exploration(explorer, cache=warm)
    # A fully warm run computes nothing, so nothing is batched either.
    assert second.stats.batch_evaluations == 0
    assert second.stats.evaluated == 0
    assert second.result.evaluated == cold.result.evaluated


def test_batch_path_with_early_reject_matches_scalar(explorer):
    pytest.importorskip("numpy")
    scalar = run_exploration(
        explorer, config=ExecutorConfig(batch=False), early_reject=True
    )
    batch = run_exploration(explorer, config=ExecutorConfig(), early_reject=True)
    assert batch.result.pareto == scalar.result.pareto
    assert batch.result.selected == scalar.result.selected
    assert batch.rejected == scalar.rejected
    assert batch.stats.early_rejected == scalar.stats.early_rejected


def test_batch_falls_back_without_numpy(explorer, monkeypatch):
    import repro.core.batch as batch_module

    monkeypatch.setattr(batch_module, "_np", None)
    outcome = run_exploration(explorer, config=ExecutorConfig(batch=True))
    assert outcome.stats.batch_evaluations == 0
    assert outcome.stats.evaluated > 0
    reference = run_exploration(explorer, config=ExecutorConfig(batch=False))
    assert outcome.result.evaluated == reference.result.evaluated
    assert outcome.result.selected == reference.result.selected
