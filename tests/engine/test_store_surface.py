"""CLI and report coverage for the storage layer.

The ``--store-shards`` / ``--gc-max-age`` / ``--compact`` flags, the
``store_stats`` block of the JSON report, the legacy-layout warm-load
guarantee (a pre-shard cache directory must serve a sharded run at 100%),
and the shared-store-service surface (``--store-url`` / ``--store-tier``):
a server seeded by a cold run in one working directory serves a warm run
in another at a 100% evaluation hit rate with nonzero artifact hits.
"""

from __future__ import annotations

import json

import pytest

from repro.engine.__main__ import build_parser, main
from repro.engine.jobs import CampaignSpec
from repro.engine.runner import CampaignRunner

BASE_ARGS = [
    "--suite", "h264",
    "--max-rows-shared", "1",
    "--max-cols-shared", "0",
]


@pytest.fixture(scope="module")
def small_spec():
    return CampaignSpec(
        name="store-smoke",
        suites=("h264",),
        max_rows_shared=1,
        max_cols_shared=0,
    )


def run_cli(tmp_path, *extra):
    output = tmp_path / "report.json"
    argv = BASE_ARGS + [
        "--cache-dir", str(tmp_path / "cache"),
        "--artifact-dir", str(tmp_path / "cache"),
        "--quiet",
        "--output", str(output),
        *extra,
    ]
    assert main(argv) == 0
    return json.loads(output.read_text())


# ----------------------------------------------------------------------
# CLI flags
# ----------------------------------------------------------------------
def test_cli_parser_store_defaults():
    args = build_parser().parse_args([])
    assert args.store_shards == 1
    assert args.gc_max_age is None
    assert args.compact is False


@pytest.mark.parametrize("bad", ["0", "-1", "100", "many"])
def test_cli_rejects_out_of_range_store_shards(bad, capsys):
    with pytest.raises(SystemExit) as outcome:
        build_parser().parse_args(["--store-shards", bad])
    assert outcome.value.code == 2
    assert "store-shards" in capsys.readouterr().err


def test_store_stats_block_in_the_json_report(tmp_path):
    payload = run_cli(tmp_path, "--store-shards", "4")
    stats = payload["report"]["store_stats"]
    assert stats["shards"] == 4
    assert stats["artifacts"]["backend"] == "pickle"
    assert stats["artifacts"]["entries"] > 0
    assert stats["artifacts"]["disk_bytes"] > 0
    assert stats["evaluations"][0]["backend"] == "jsonl"
    assert stats["evaluations"][0]["stores"] > 0
    assert stats["janitor"] is None  # neither --compact nor --gc-max-age


def test_sharded_layout_on_disk_and_warm_rerun(tmp_path):
    run_cli(tmp_path, "--store-shards", "4")
    cache_dir = tmp_path / "cache"
    shard_files = list(cache_dir.glob("evals-*.s??.jsonl"))
    shard_dirs = [
        child
        for stage_dir in (cache_dir / "artifacts").iterdir()
        for child in stage_dir.iterdir()
        if child.is_dir() and child.name.startswith("s")
    ]
    # With 4 shards at least one record/artifact lands off shard 0.
    assert shard_files or shard_dirs

    warm = run_cli(tmp_path, "--store-shards", "4")
    assert warm["cache_hit_rate"] == 1.0
    assert warm["report"]["artifact_misses"] == 0


def test_compact_and_gc_flags_populate_the_janitor_block(tmp_path):
    run_cli(tmp_path, "--store-shards", "2")
    payload = run_cli(tmp_path, "--store-shards", "2", "--compact", "--gc-max-age", "86400")
    janitor = payload["report"]["store_stats"]["janitor"]
    assert janitor["compacted"] is True
    assert janitor["gc_max_age"] == 86400
    assert janitor["artifacts"]["evicted"] == 0  # everything is fresh
    assert janitor["artifacts"]["compaction"]["entries_kept"] > 0
    assert janitor["evaluations"][0]["compaction"]["entries_kept"] > 0

    # The campaign after compaction + GC still runs fully warm.
    warm = run_cli(tmp_path, "--store-shards", "2")
    assert warm["cache_hit_rate"] == 1.0
    assert warm["report"]["artifact_misses"] == 0


def test_gc_evicts_a_stale_store(tmp_path):
    run_cli(tmp_path)
    # A max age of zero seconds declares every existing entry stale.
    payload = run_cli(tmp_path, "--gc-max-age", "0", "--compact")
    janitor = payload["report"]["store_stats"]["janitor"]
    evicted = janitor["artifacts"]["evicted"] + janitor["evaluations"][0]["evicted"]
    assert evicted > 0


# ----------------------------------------------------------------------
# Legacy layouts load warm
# ----------------------------------------------------------------------
def test_legacy_single_file_cache_dir_loads_warm_when_sharded(tmp_path):
    """A pre-shard cache dir (shards=1) must serve a sharded run at 100%."""
    cold = run_cli(tmp_path)  # legacy layout: single file, flat artifacts
    assert cold["cache_hit_rate"] == 0.0
    cache_dir = tmp_path / "cache"
    assert not list(cache_dir.glob("evals-*.s??.jsonl"))

    warm = run_cli(tmp_path, "--store-shards", "8")
    assert warm["cache_hit_rate"] == 1.0
    assert warm["report"]["cache_misses"] == 0
    assert warm["report"]["artifact_misses"] == 0
    assert warm["report"]["store_stats"]["shards"] == 8


def test_sharded_cache_dir_loads_warm_when_unsharded(tmp_path):
    """And the reverse: a sharded dir serves a legacy-configured run."""
    run_cli(tmp_path, "--store-shards", "8")
    warm = run_cli(tmp_path)
    assert warm["cache_hit_rate"] == 1.0
    assert warm["report"]["artifact_misses"] == 0


# ----------------------------------------------------------------------
# Runner API
# ----------------------------------------------------------------------
def test_runner_accepts_store_options(small_spec, tmp_path):
    cold, _ = CampaignRunner(
        small_spec,
        cache_dir=tmp_path,
        artifact_dir=tmp_path,
        store_shards=4,
        gc_max_age=86400.0,
        compact=True,
    ).run()
    assert cold.store_stats["shards"] == 4
    assert cold.store_stats["janitor"] is not None

    warm, _ = CampaignRunner(
        small_spec, cache_dir=tmp_path, artifact_dir=tmp_path, store_shards=4
    ).run()
    assert warm.cache_misses == 0
    assert warm.artifact_misses == 0
    assert warm.store_stats["janitor"] is None


def test_memory_only_runner_reports_memory_store(small_spec):
    report, _ = CampaignRunner(small_spec).run()
    assert report.store_stats["artifacts"].backend == "memory"
    assert report.store_stats["evaluations"] == []


# ----------------------------------------------------------------------
# Store paths thread through the flow and the pipeline
# ----------------------------------------------------------------------
def test_flow_accepts_a_store_path(tmp_path):
    from repro.flow import run_rsp_flow
    from repro.kernels import h264_kernels

    kernels = h264_kernels()[:1]
    cold = run_rsp_flow(kernels, artifact_store=tmp_path / "store", store_shards=4)
    assert (tmp_path / "store" / "artifacts" / "base_schedule").is_dir()

    warm = run_rsp_flow(kernels, artifact_store=tmp_path / "store", store_shards=4)
    assert warm.selected_name == cold.selected_name
    assert warm.total_selected_cycles() == cold.total_selected_cycles()


def test_pipeline_accepts_a_store_path(tmp_path):
    from repro.kernels import get_kernel
    from repro.mapping.pipeline import MappingPipeline

    pipeline = MappingPipeline(store=tmp_path / "store", store_shards=2)
    assert pipeline.store.shards == 2
    pipeline.profile_artifact(get_kernel("MVM"))
    assert pipeline.store.store_stats().entries > 0

    warm = MappingPipeline(store=tmp_path / "store", store_shards=2)
    warm.profile_artifact(get_kernel("MVM"))
    assert warm.stats.timing("extract_profile").hits == 1


# ----------------------------------------------------------------------
# Shared store service (--store-url / --store-tier)
# ----------------------------------------------------------------------
@pytest.fixture()
def live_server(tmp_path_factory):
    from repro.service import StoreServer
    from repro.store import PickleDirBackend

    root = tmp_path_factory.mktemp("service-store")
    with StoreServer(PickleDirBackend(root)) as server:
        yield server


def run_cli_remote(tmp_path, url, *extra):
    output = tmp_path / "report.json"
    argv = BASE_ARGS + ["--store-url", url, "--quiet", "--output", str(output), *extra]
    assert main(argv) == 0
    return json.loads(output.read_text())


def test_cli_store_url_flag_validation(capsys):
    assert main(BASE_ARGS + ["--store-tier", "--quiet"]) == 2
    assert "--store-url" in capsys.readouterr().err
    assert main(BASE_ARGS + ["--store-url", "http://127.0.0.1:1", "--no-cache"]) == 2
    assert "replaces the local stores" in capsys.readouterr().err


def test_runner_store_url_conflicts(small_spec, tmp_path):
    with pytest.raises(ValueError, match="replaces the local stores"):
        CampaignRunner(small_spec, cache_dir=tmp_path, store_url="http://127.0.0.1:1")
    with pytest.raises(ValueError, match="needs store_url"):
        CampaignRunner(small_spec, store_tier=True)


def test_cold_run_seeds_the_service_for_a_warm_run_elsewhere(
    live_server, tmp_path_factory
):
    """The acceptance criterion: different working directories, one store."""
    cold_dir = tmp_path_factory.mktemp("worker-a")
    warm_dir = tmp_path_factory.mktemp("worker-b")

    cold = run_cli_remote(cold_dir, live_server.url)
    assert cold["cache_hit_rate"] == 0.0
    assert cold["report"]["store_stats"]["store_url"] == live_server.url
    assert cold["report"]["store_stats"]["remote"]["requests"] > 0
    # Nothing landed in either working directory: the service owns the data.
    assert not list(cold_dir.glob("**/*.jsonl"))
    assert not list(cold_dir.glob("**/artifacts"))

    warm = run_cli_remote(warm_dir, live_server.url)
    assert warm["cache_hit_rate"] == 1.0
    assert warm["report"]["cache_misses"] == 0
    assert warm["report"]["artifact_hits"] > 0
    assert warm["report"]["artifact_misses"] == 0


def test_store_tier_reports_front_and_flush_counters(live_server, tmp_path):
    payload = run_cli_remote(tmp_path, live_server.url, "--store-tier")
    stats = payload["report"]["store_stats"]
    tier = stats["tier"]
    assert tier["flushed_records"] > 0
    assert tier["pending"] == 0  # the runner settles the queue pre-report
    assert tier["front_hits"] + tier["front_misses"] > 0
    assert stats["remote"]["dropped_puts"] == 0

    # A tiered rerun in the same process of the CLI is still fully warm.
    warm = run_cli_remote(tmp_path, live_server.url, "--store-tier")
    assert warm["cache_hit_rate"] == 1.0


def test_remote_janitor_block_and_gc(live_server, tmp_path):
    run_cli_remote(tmp_path, live_server.url)
    payload = run_cli_remote(tmp_path, live_server.url, "--compact", "--gc-max-age", "86400")
    janitor = payload["report"]["store_stats"]["janitor"]
    assert janitor["compacted"] is True
    assert janitor["remote"]["scanned"] > 0
    assert janitor["remote"]["evicted"] == 0  # everything is fresh

    evict = run_cli_remote(tmp_path, live_server.url, "--gc-max-age", "0")
    assert evict["report"]["store_stats"]["janitor"]["remote"]["evicted"] > 0


def test_runner_with_unreachable_service_still_completes(small_spec):
    """Degraded mode: no server, the campaign recomputes and succeeds —
    and the writes it dropped are surfaced, not silently counted away."""
    runner = CampaignRunner(small_spec, store_url="http://127.0.0.1:9")
    runner._remote.retries = 0
    runner._remote.backoff = 0.0
    try:
        with pytest.warns(RuntimeWarning, match=r"store write\(s\) were dropped"):
            report, results = runner.run()
    finally:
        runner.close()
    assert report.cache_hits == 0
    assert results["h264"].selected is not None
    assert report.store_stats["remote"]["offline_trips"] >= 1
    # The degraded run dropped every evaluation/artifact write; the count
    # is a first-class report field and feeds the CLI store: line.
    assert report.store_stats["dropped_writes"] > 0
    assert (
        report.store_stats["dropped_writes"]
        == report.store_stats["remote"]["dropped_puts"]
    )


def test_flow_accepts_a_store_url(live_server):
    from repro.flow import run_rsp_flow
    from repro.kernels import h264_kernels

    kernels = h264_kernels()[:1]
    cold = run_rsp_flow(kernels, store_url=live_server.url)
    assert live_server.service.backend.stats().entries > 0

    warm = run_rsp_flow(kernels, store_url=live_server.url, store_tier=True)
    assert warm.selected_name == cold.selected_name
    assert warm.total_selected_cycles() == cold.total_selected_cycles()

    with pytest.raises(Exception, match="either artifact_store or store_url"):
        run_rsp_flow(kernels, artifact_store="somewhere", store_url=live_server.url)
