"""Tests for campaign runs and the ``python -m repro.engine`` CLI."""

from __future__ import annotations

import json

import pytest

from repro.engine.__main__ import build_parser, main
from repro.engine.jobs import CampaignSpec
from repro.engine.runner import SUMMARY_HEADERS, CampaignRunner
from repro.utils.serialization import from_json, to_json


@pytest.fixture(scope="module")
def small_spec():
    """A fast campaign: two H.264 kernels, a 1x1 sharing grid."""
    return CampaignSpec(
        name="smoke",
        suites=("h264",),
        max_rows_shared=1,
        max_cols_shared=1,
        workers=2,
        backend="thread",
        chunk_size=2,
    )


@pytest.fixture(scope="module")
def campaign_outcome(small_spec, tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("cache")
    report, results = CampaignRunner(small_spec, cache_dir=cache_dir).run()
    return report, results, cache_dir


def test_campaign_report_shape(campaign_outcome, small_spec):
    report, results, _ = campaign_outcome
    assert report.campaign == "smoke"
    assert [suite.suite for suite in report.suites] == ["h264"]
    assert set(results) == {"h264"}
    suite = report.suites[0]
    assert len(suite.kernels) == 2  # the two H.264 extension kernels
    assert suite.num_candidates == len(small_spec.candidate_grid())
    assert suite.num_feasible <= suite.num_candidates
    assert suite.num_pareto <= suite.num_feasible
    assert suite.base_area_slices > 0
    assert report.wall_seconds > 0
    assert len(report.summary_rows()[0]) == len(SUMMARY_HEADERS)


def test_campaign_exploration_results_are_complete(campaign_outcome, small_spec):
    _, results, _ = campaign_outcome
    exploration = results["h264"]
    assert len(exploration.evaluated) == len(small_spec.candidate_grid())
    assert exploration.base.architecture.name == "Base"


def test_second_campaign_run_hits_cache(small_spec, campaign_outcome):
    _, _, cache_dir = campaign_outcome
    report, _ = CampaignRunner(small_spec, cache_dir=cache_dir).run()
    assert report.cache_misses == 0
    assert report.cache_hit_rate >= 0.9


def test_report_carries_mapping_stage_timings(campaign_outcome):
    report, _, _ = campaign_outcome
    suite = report.suites[0]
    assert set(suite.mapping_stages) >= {"build_dfg", "base_schedule", "extract_profile"}
    assert suite.mapping_stages["base_schedule"]["misses"] == 2  # one per kernel
    assert suite.mapping_seconds > 0
    assert report.mapping_stages["base_schedule"]["misses"] == 2
    assert report.artifact_dir is None  # no artifact_dir configured
    assert report.artifact_hits == 0


def test_warm_artifact_store_skips_mapping(small_spec, tmp_path):
    artifact_dir = tmp_path / "store"
    cold, _ = CampaignRunner(small_spec, artifact_dir=artifact_dir).run()
    warm, _ = CampaignRunner(small_spec, artifact_dir=artifact_dir).run()

    assert cold.artifact_hits == 0
    assert cold.artifact_dir == str(artifact_dir / "artifacts")
    assert warm.artifact_hits > 0
    assert warm.artifact_misses == 0
    # The warm run fetched profiles directly; base scheduling never ran.
    assert "base_schedule" not in warm.mapping_stages
    assert warm.mapping_stages["extract_profile"]["misses"] == 0
    # Identical selections either way.
    assert [s.selected for s in warm.suites] == [s.selected for s in cold.suites]


def test_profile_provider_hook_overrides_pipeline(small_spec):
    seen = []

    def provider(suite_name, kernels):
        seen.append(suite_name)
        pipeline = CampaignRunner(small_spec).pipeline
        return pipeline.profiles_for(kernels)

    report, _ = CampaignRunner(small_spec, profile_provider=provider).run()
    assert seen == ["h264"]
    # The runner's own pipeline was bypassed, so its stats stay empty.
    assert report.mapping_stages == {}
    assert report.suites[0].selected is not None


def test_campaign_report_serialises(campaign_outcome):
    report, _, _ = campaign_outcome
    payload = from_json(to_json(report))
    assert payload["campaign"] == "smoke"
    assert payload["suites"][0]["suite"] == "h264"
    assert payload["suites"][0]["cache_misses"] == report.suites[0].cache_misses


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_parser_defaults():
    args = build_parser().parse_args([])
    assert args.suites is None
    assert args.backend == "thread"
    assert args.workers == 1


def test_cli_runs_campaign_and_writes_report(tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    output = tmp_path / "report.json"
    argv = [
        "--suite", "h264",
        "--max-rows-shared", "1",
        "--max-cols-shared", "1",
        "--workers", "2",
        "--cache-dir", str(cache_dir),
        "--output", str(output),
    ]
    assert main(argv) == 0
    printed = capsys.readouterr().out
    assert "h264" in printed
    assert output.exists()
    payload = json.loads(output.read_text())
    assert payload["report"]["campaign"] == "campaign"
    assert payload["suite_selections"]["h264"]["selected"] is not None

    # Second identical invocation: served from the cache.
    assert main(argv) == 0
    payload = json.loads(output.read_text())
    assert payload["cache_hit_rate"] >= 0.9


def test_cli_reports_domain_errors_cleanly(capsys):
    assert main(["--suite", "h264", "--workers", "0", "--no-cache", "--quiet"]) == 2
    captured = capsys.readouterr()
    assert "error: workers must be at least 1" in captured.err
    assert main(["--suite", "h264", "--stages", "0", "--no-cache", "--quiet"]) == 2
    assert "invalid pipeline stage count" in capsys.readouterr().err


def test_cli_no_cache_and_quiet(tmp_path, capsys):
    argv = [
        "--suite", "h264",
        "--max-rows-shared", "1",
        "--max-cols-shared", "0",
        "--no-cache",
        "--quiet",
    ]
    assert main(argv) == 0
    assert capsys.readouterr().out == ""


def test_cli_artifact_dir_warm_run_reports_hits(tmp_path, capsys):
    artifact_dir = tmp_path / "store"
    output = tmp_path / "report.json"
    argv = [
        "--suite", "h264",
        "--max-rows-shared", "1",
        "--max-cols-shared", "0",
        "--no-cache",
        "--artifact-dir", str(artifact_dir),
        "--output", str(output),
    ]
    assert main(argv) == 0
    cold = json.loads(output.read_text())["report"]
    assert cold["artifact_hits"] == 0
    assert cold["mapping_stages"]["base_schedule"]["misses"] == 2
    assert "artifacts:" in capsys.readouterr().out

    assert main(argv) == 0
    warm = json.loads(output.read_text())["report"]
    assert warm["artifact_hits"] > 0
    assert "base_schedule" not in warm["mapping_stages"]
    assert warm["artifact_dir"] == str(artifact_dir / "artifacts")


def test_cli_no_artifact_cache_disables_the_store(tmp_path):
    output = tmp_path / "report.json"
    argv = [
        "--suite", "h264",
        "--max-rows-shared", "1",
        "--max-cols-shared", "0",
        "--cache-dir", str(tmp_path / "cache"),
        "--no-artifact-cache",
        "--quiet",
        "--output", str(output),
    ]
    assert main(argv) == 0
    assert main(argv) == 0  # second run: evaluation cache warm, artifacts off
    payload = json.loads(output.read_text())["report"]
    assert payload["artifact_dir"] is None
    assert payload["artifact_hits"] == 0
    assert payload["mapping_stages"]["base_schedule"]["misses"] == 2


def test_cli_artifact_dir_defaults_to_cache_dir(tmp_path):
    cache_dir = tmp_path / "cache"
    output = tmp_path / "report.json"
    argv = [
        "--suite", "h264",
        "--max-rows-shared", "1",
        "--max-cols-shared", "0",
        "--cache-dir", str(cache_dir),
        "--quiet",
        "--output", str(output),
    ]
    assert main(argv) == 0
    payload = json.loads(output.read_text())
    assert payload["report"]["artifact_dir"] == str(cache_dir / "artifacts")
    assert (cache_dir / "artifacts" / "base_schedule").is_dir()


# ----------------------------------------------------------------------
# Vectorized batch path through the runner and the CLI
# ----------------------------------------------------------------------
def test_runner_batch_flag_and_counters(small_spec):
    pytest.importorskip("numpy")
    batched, batched_results = CampaignRunner(small_spec).run()
    scalar, scalar_results = CampaignRunner(small_spec, batch=False).run()
    assert scalar.batch_evaluations == 0
    assert all(suite.batch_evaluations == 0 for suite in scalar.suites)
    assert batched.batch_evaluations > 0
    assert batched.batch_evaluations == sum(
        suite.batch_evaluations for suite in batched.suites
    )
    # The batch path changes throughput, never results: the exploration
    # outcomes serialise byte-identically.
    assert to_json(batched_results["h264"]) == to_json(scalar_results["h264"])
    assert batched.suites[0].selected == scalar.suites[0].selected


def test_runner_batch_counters_zero_without_numpy(small_spec, monkeypatch):
    import repro.core.batch as batch_module

    monkeypatch.setattr(batch_module, "_np", None)
    report, _ = CampaignRunner(small_spec).run()
    assert report.batch_evaluations == 0
    assert report.suites[0].selected is not None


def test_cli_batch_flags():
    parser = build_parser()
    assert parser.parse_args([]).batch is None
    assert parser.parse_args(["--batch"]).batch is True
    assert parser.parse_args(["--no-batch"]).batch is False


def test_cli_no_batch_matches_default_report(tmp_path, capsys):
    pytest.importorskip("numpy")
    base_args = [
        "--suite", "h264", "--max-rows-shared", "1", "--max-cols-shared", "1",
        "--no-cache", "--no-artifact-cache", "--quiet",
    ]
    fast = tmp_path / "fast.json"
    slow = tmp_path / "slow.json"
    assert main(base_args + ["--output", str(fast)]) == 0
    assert main(base_args + ["--no-batch", "--output", str(slow)]) == 0
    capsys.readouterr()
    fast_payload = json.loads(fast.read_text())
    slow_payload = json.loads(slow.read_text())
    assert fast_payload["report"]["batch_evaluations"] > 0
    assert slow_payload["report"]["batch_evaluations"] == 0
    assert fast_payload["suite_selections"] == slow_payload["suite_selections"]
    for key in ("total_jobs", "cache_hits", "early_rejected"):
        assert fast_payload["report"][key] == slow_payload["report"][key]


def test_cli_summary_line_shows_batched_count(tmp_path, capsys):
    pytest.importorskip("numpy")
    assert main([
        "--suite", "h264", "--max-rows-shared", "1", "--max-cols-shared", "1",
        "--no-cache", "--no-artifact-cache",
    ]) == 0
    out = capsys.readouterr().out
    assert "batched:" in out


# ----------------------------------------------------------------------
# Custom mapping flows
# ----------------------------------------------------------------------
RACE_FLOW = {
    "name": "race",
    "edges": [
        "build_dfg >> base_schedule >> extract_profile",
        "base_schedule >> (rearrange | remap | passthrough) >> generate_context",
    ],
    "nodes": {
        "rearrange": {"when": "!target_is_base"},
        "remap": {"when": "!target_is_base"},
        "passthrough": {"when": "target_is_base"},
    },
    "select": {"rearranged": {"metric": "summary.cycles", "mode": "min"}},
}


def test_campaign_with_custom_flow_reports_routed_stages(small_spec):
    report, results = CampaignRunner(small_spec, flow=RACE_FLOW).run()
    assert report.flow["name"] == "race"
    assert "remap" in report.flow["nodes"]
    suite = report.suites[0]
    # The post-exploration mapping pass drove both raced branches.
    for stage in ("rearrange", "remap"):
        counts = suite.mapping_stages[stage]
        assert counts["hits"] + counts["misses"] > 0
    # The exploration itself is flow-agnostic: same selection as default.
    default_report, _ = CampaignRunner(small_spec).run()
    assert default_report.flow == {}
    assert [s.selected for s in report.suites] == [s.selected for s in default_report.suites]
    assert results["h264"].selected is not None


def test_runner_rejects_mapper_and_flow_together(small_spec):
    from repro.mapping.mapper import RSPMapper

    with pytest.raises(ValueError, match="already carries its pipeline and flow"):
        CampaignRunner(small_spec, mapper=RSPMapper(), flow=RACE_FLOW)


def test_cli_flow_runs_and_reports_routed_nodes(tmp_path, capsys):
    flow_path = tmp_path / "flow.json"
    flow_path.write_text(json.dumps(RACE_FLOW))
    output = tmp_path / "report.json"
    assert main([
        "--suite", "h264", "--max-rows-shared", "1", "--max-cols-shared", "1",
        "--no-cache", "--flow", str(flow_path), "--output", str(output),
    ]) == 0
    out = capsys.readouterr().out
    assert "flow: race" in out
    payload = json.loads(output.read_text())
    assert payload["report"]["flow"]["name"] == "race"
    assert "remap" in payload["report"]["mapping_stages"]


def test_cli_flow_is_rejected_in_worker_mode(tmp_path, capsys):
    flow_path = tmp_path / "flow.json"
    flow_path.write_text(json.dumps(RACE_FLOW))
    code = main([
        "--suite", "h264", "--worker", "--coordinator", str(tmp_path / "coord"),
        "--flow", str(flow_path), "--quiet",
    ])
    assert code == 2
    assert "--flow is not supported in worker mode" in capsys.readouterr().err
