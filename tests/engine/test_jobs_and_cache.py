"""Tests for evaluation jobs, content hashing and the persistent cache."""

from __future__ import annotations

import json
import warnings

import pytest

from repro.arch.template import default_array_spec
from repro.core.cost_model import HardwareCostModel
from repro.core.exploration import RSPDesignSpaceExplorer
from repro.core.rsp_params import base_parameters, paper_parameters
from repro.core.stalls import CriticalOpIssue, ScheduleProfile
from repro.core.timing_model import TimingModel
from repro.engine.cache import EvaluationCache
from repro.engine.jobs import (
    SUITE_NAMES,
    CampaignSpec,
    EvaluationJob,
    evaluation_context_hash,
    hash_payload,
    suite_kernels,
)
from repro.errors import ExplorationError


def make_profiles(length: int = 10) -> dict:
    issues = tuple(
        CriticalOpIssue(cycle=cycle, row=index, col=index, iteration=index,
                        has_immediate_dependent=True)
        for cycle in range(3)
        for index in range(4)
    )
    return {
        "k": ScheduleProfile(kernel="k", length=length, critical_issues=issues, rows=8, cols=8)
    }


@pytest.fixture()
def context_hash():
    return evaluation_context_hash(
        make_profiles(), default_array_spec(), HardwareCostModel(), TimingModel()
    )


# ----------------------------------------------------------------------
# Content hashing
# ----------------------------------------------------------------------
def test_hash_payload_is_deterministic():
    payload = {"b": paper_parameters(2, pipelined=True), "a": [1, 2, 3]}
    assert hash_payload(payload) == hash_payload(payload)
    assert len(hash_payload(payload)) == 64


def test_context_hash_changes_with_profiles():
    first = evaluation_context_hash(
        make_profiles(10), default_array_spec(), HardwareCostModel(), TimingModel()
    )
    second = evaluation_context_hash(
        make_profiles(11), default_array_spec(), HardwareCostModel(), TimingModel()
    )
    assert first != second


def test_context_hash_changes_with_timing_calibration():
    base = evaluation_context_hash(
        make_profiles(), default_array_spec(), HardwareCostModel(), TimingModel()
    )
    recalibrated = evaluation_context_hash(
        make_profiles(),
        default_array_spec(),
        HardwareCostModel(),
        TimingModel(wiring_margin_ns=1.5),
    )
    assert base != recalibrated


def test_job_hash_depends_on_parameters_and_context(context_hash):
    job_a = EvaluationJob(paper_parameters(1, pipelined=False))
    job_b = EvaluationJob(paper_parameters(2, pipelined=False))
    assert job_a.content_hash(context_hash) != job_b.content_hash(context_hash)
    assert job_a.content_hash(context_hash) != job_a.content_hash("other-context")
    assert job_a.content_hash(context_hash) == EvaluationJob(
        paper_parameters(1, pipelined=False)
    ).content_hash(context_hash)


def test_job_label():
    assert EvaluationJob(base_parameters(), name="Base").label == "Base"
    assert EvaluationJob(paper_parameters(2, pipelined=True)).label == (
        "rsp(shr=2,shc=0,stages=2)"
    )


# ----------------------------------------------------------------------
# Campaign specs
# ----------------------------------------------------------------------
def test_campaign_spec_jobs_cover_the_grid():
    spec = CampaignSpec(suites=("dsp",), max_rows_shared=1, max_cols_shared=1)
    jobs = spec.jobs()
    assert len(jobs) == len(spec.candidate_grid())
    assert jobs[0].name == "Base"
    assert all(job.name is None for job in jobs[1:])


def test_campaign_spec_rejects_unknown_suite():
    with pytest.raises(ExplorationError):
        CampaignSpec(suites=("nonexistent",))
    with pytest.raises(ExplorationError):
        CampaignSpec(suites=())


def test_suite_kernels_known_and_unknown():
    for name in SUITE_NAMES:
        kernels = suite_kernels(name)
        assert kernels and all(kernel.name for kernel in kernels)
    with pytest.raises(ExplorationError):
        suite_kernels("bogus")


# ----------------------------------------------------------------------
# Cache
# ----------------------------------------------------------------------
def test_cache_round_trips_an_evaluation(tmp_path, context_hash):
    explorer = RSPDesignSpaceExplorer(make_profiles())
    job = EvaluationJob(paper_parameters(2, pipelined=True))
    evaluation = explorer.evaluate(job.parameters, name=job.name)
    key = job.content_hash(context_hash)

    cache = EvaluationCache(tmp_path / "evals.jsonl")
    assert cache.get(key, job, explorer.array) is None
    cache.put(key, evaluation)

    reloaded = EvaluationCache(tmp_path / "evals.jsonl")
    assert len(reloaded) == 1
    restored = reloaded.get(key, job, explorer.array)
    assert restored is not None
    assert restored.area_slices == evaluation.area_slices
    assert restored.critical_path_ns == evaluation.critical_path_ns
    assert restored.total_estimated_cycles == evaluation.total_estimated_cycles
    assert restored.total_stall_cycles == evaluation.total_stall_cycles
    assert restored.architecture.name == evaluation.architecture.name
    assert restored.parameters == evaluation.parameters


def test_cache_stats_track_hits_and_misses(tmp_path, context_hash):
    explorer = RSPDesignSpaceExplorer(make_profiles())
    job = EvaluationJob(paper_parameters(1, pipelined=False))
    key = job.content_hash(context_hash)
    cache = EvaluationCache(tmp_path / "evals.jsonl")

    cache.get(key, job, explorer.array)
    cache.put(key, explorer.evaluate(job.parameters))
    cache.get(key, job, explorer.array)
    assert cache.stats.misses == 1
    assert cache.stats.hits == 1
    assert cache.stats.stores == 1
    assert cache.stats.hit_rate == 0.5


def test_cache_skips_and_counts_corrupt_lines(tmp_path, context_hash):
    explorer = RSPDesignSpaceExplorer(make_profiles())
    job = EvaluationJob(paper_parameters(1, pipelined=False))
    key = job.content_hash(context_hash)
    path = tmp_path / "evals.jsonl"

    cache = EvaluationCache(path)
    cache.put(key, explorer.evaluate(job.parameters))
    with path.open("a", encoding="utf-8") as handle:
        handle.write("{truncated json\n")
        handle.write(json.dumps({"key": "missing-fields"}) + "\n")
        handle.write("\n")  # blank lines are not corruption

    with pytest.warns(RuntimeWarning, match=r"skipped 2 corrupt line\(s\)"):
        reloaded = EvaluationCache(path)
    assert reloaded.corrupt_lines == 2
    assert len(reloaded) == 1
    assert reloaded.get(key, job, explorer.array) is not None


def test_cache_loads_clean_file_without_warning(tmp_path, context_hash):
    explorer = RSPDesignSpaceExplorer(make_profiles())
    job = EvaluationJob(paper_parameters(2, pipelined=False))
    key = job.content_hash(context_hash)
    path = tmp_path / "evals.jsonl"
    EvaluationCache(path).put(key, explorer.evaluate(job.parameters))

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        reloaded = EvaluationCache(path)
    assert reloaded.corrupt_lines == 0


def test_in_memory_cache_needs_no_path(context_hash):
    explorer = RSPDesignSpaceExplorer(make_profiles())
    job = EvaluationJob(paper_parameters(3, pipelined=True))
    key = job.content_hash(context_hash)
    cache = EvaluationCache()
    cache.put(key, explorer.evaluate(job.parameters))
    assert key in cache
    assert cache.get(key, job, explorer.array) is not None


def test_for_context_creates_directory(tmp_path):
    cache = EvaluationCache.for_context(tmp_path / "nested" / "cache", "ab" * 32)
    assert cache.path.parent.is_dir()
    assert cache.path.name.startswith("evals-")


def test_sharded_cache_spreads_records_and_reloads(tmp_path, context_hash):
    explorer = RSPDesignSpaceExplorer(make_profiles())
    jobs = [
        EvaluationJob(paper_parameters(stages, pipelined=flag))
        for stages in (1, 2, 3)
        for flag in (True, False)
    ]
    cache = EvaluationCache.for_context(tmp_path, context_hash, shards=4)
    for job in jobs:
        cache.put(job.content_hash(context_hash), explorer.evaluate(job.parameters))
    shard_files = list(tmp_path.glob("evals-*.jsonl"))
    assert len(shard_files) > 1  # records landed on more than one shard

    reloaded = EvaluationCache.for_context(tmp_path, context_hash, shards=4)
    assert len(reloaded) == len(jobs)
    for job in jobs:
        assert reloaded.get(job.content_hash(context_hash), job, explorer.array) is not None


def test_legacy_cache_file_loads_warm_into_a_sharded_cache(tmp_path, context_hash):
    explorer = RSPDesignSpaceExplorer(make_profiles())
    job = EvaluationJob(paper_parameters(2, pipelined=True))
    key = job.content_hash(context_hash)
    EvaluationCache.for_context(tmp_path, context_hash).put(
        key, explorer.evaluate(job.parameters)
    )

    sharded = EvaluationCache.for_context(tmp_path, context_hash, shards=8)
    assert key in sharded
    assert sharded.get(key, job, explorer.array) is not None
    assert sharded.stats.hit_rate == 1.0


def test_cache_janitor_compacts_duplicates(tmp_path, context_hash):
    explorer = RSPDesignSpaceExplorer(make_profiles())
    job = EvaluationJob(paper_parameters(1, pipelined=True))
    key = job.content_hash(context_hash)
    cache = EvaluationCache(tmp_path / "evals.jsonl")
    cache.put(key, explorer.evaluate(job.parameters))
    line = (tmp_path / "evals.jsonl").read_text()
    with (tmp_path / "evals.jsonl").open("a", encoding="utf-8") as handle:
        handle.write(line)  # a duplicate line from a racing writer

    report = EvaluationCache(tmp_path / "evals.jsonl").janitor().sweep()
    assert report.compaction.dropped_duplicates == 1
    assert len((tmp_path / "evals.jsonl").read_text().splitlines()) == 1
    assert EvaluationCache(tmp_path / "evals.jsonl").get(key, job, explorer.array) is not None
