"""Tests for the content-addressed artifact store."""

from __future__ import annotations

import pickle

import pytest

from repro.engine.artifacts import ARTIFACT_SUBDIR, ArtifactStore


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(tmp_path)


KEY = "a" * 64
OTHER_KEY = "b" * 64


class TestInMemoryStore:
    def test_miss_then_hit(self):
        store = ArtifactStore()
        hit, value = store.fetch("stage", KEY)
        assert not hit and value is None
        store.put("stage", KEY, {"x": 1})
        hit, value = store.fetch("stage", KEY)
        assert hit and value == {"x": 1}
        assert not store.persistent
        assert store.directory is None

    def test_none_is_a_storable_value(self):
        store = ArtifactStore()
        store.put("stage", KEY, None)
        hit, value = store.fetch("stage", KEY)
        assert hit and value is None

    def test_stages_namespace_keys(self):
        store = ArtifactStore()
        store.put("alpha", KEY, 1)
        assert store.contains("alpha", KEY)
        assert not store.contains("beta", KEY)


class TestPersistentStore:
    def test_round_trip_across_instances(self, tmp_path):
        first = ArtifactStore(tmp_path)
        first.put("stage", KEY, [1, 2, 3])
        second = ArtifactStore(tmp_path)
        assert second.contains("stage", KEY)
        hit, value = second.fetch("stage", KEY)
        assert hit and value == [1, 2, 3]
        assert second.stats.hits == 1

    def test_shared_directory_layout(self, store, tmp_path):
        store.put("base_schedule", KEY, "payload")
        files = list((tmp_path / ARTIFACT_SUBDIR / "base_schedule").glob("*.pkl"))
        assert len(files) == 1
        assert files[0].name.startswith(KEY[:32])

    def test_disk_hit_populates_memory_and_returns_same_object(self, tmp_path):
        ArtifactStore(tmp_path).put("stage", KEY, {"deep": [1]})
        store = ArtifactStore(tmp_path)
        _, first = store.fetch("stage", KEY)
        _, second = store.fetch("stage", KEY)
        assert first is second

    def test_corrupt_file_is_a_counted_warning_miss(self, store, tmp_path):
        store.put("stage", KEY, "good")
        path = next((tmp_path / ARTIFACT_SUBDIR / "stage").glob("*.pkl"))
        path.write_bytes(b"\x80\x04 not a pickle")
        fresh = ArtifactStore(tmp_path)
        with pytest.warns(RuntimeWarning, match="corrupt artifact stage/"):
            hit, _ = fresh.fetch("stage", KEY)
        assert not hit
        assert fresh.stats.corrupt == 1
        # The next put simply overwrites the corrupt file.
        fresh.put("stage", KEY, "repaired")
        with path.open("rb") as handle:
            assert pickle.load(handle) == "repaired"

    def test_stats_track_per_stage(self, store):
        store.fetch("alpha", KEY)
        store.put("alpha", KEY, 1)
        store.fetch("alpha", KEY)
        store.fetch("beta", OTHER_KEY)
        assert store.stats.hits == 1
        assert store.stats.misses == 2
        assert store.stats.stores == 1
        assert store.stats.by_stage["alpha"] == {"hits": 1, "misses": 1, "stores": 1}
        assert store.stats.by_stage["beta"]["misses"] == 1
        assert 0.0 < store.stats.hit_rate < 1.0


class TestShardedStore:
    def test_sharded_layout_under_stage_dirs(self, tmp_path):
        store = ArtifactStore(tmp_path, shards=4)
        store.put("stage", KEY, "payload")
        files = list((tmp_path / ARTIFACT_SUBDIR / "stage").glob("s??/*.pkl"))
        assert len(files) == 1
        assert files[0].name.startswith(KEY[:32])

    def test_flat_legacy_store_reads_warm_from_a_sharded_one(self, tmp_path):
        ArtifactStore(tmp_path).put("stage", KEY, [1, 2])
        sharded = ArtifactStore(tmp_path, shards=4)
        assert sharded.contains("stage", KEY)
        assert sharded.fetch("stage", KEY) == (True, [1, 2])

    def test_janitor_compaction_migrates_flat_files(self, tmp_path):
        ArtifactStore(tmp_path).put("stage", KEY, [1, 2])
        sharded = ArtifactStore(tmp_path, shards=4)
        report = sharded.janitor().sweep()
        assert report.compaction.migrated_legacy == 1
        assert not list((tmp_path / ARTIFACT_SUBDIR / "stage").glob("*.pkl"))
        assert sharded.fetch("stage", KEY) == (True, [1, 2])

    def test_in_memory_store_has_no_janitor_but_reports_stats(self):
        store = ArtifactStore()
        store.put("stage", KEY, 1)
        with pytest.raises(ValueError):
            store.janitor()
        snapshot = store.store_stats()
        assert snapshot.backend == "memory"
        assert snapshot.entries == 1

    def test_store_stats_snapshot_of_a_persistent_store(self, tmp_path):
        store = ArtifactStore(tmp_path, shards=2)
        store.put("stage", KEY, "payload")
        store.fetch("stage", KEY)
        snapshot = store.store_stats()
        assert snapshot.backend == "pickle"
        assert snapshot.shards == 2
        assert snapshot.entries == 1
        assert snapshot.disk_bytes > 0
