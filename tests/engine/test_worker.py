"""Fleet workers against a live coordinator: byte-identity and requeue.

Everything here runs in-process — a real :class:`StoreServer` with a
:class:`CampaignCoordinator` on an ephemeral port, and workers driven by
:func:`run_worker` on threads — so the full HTTP lease/heartbeat/complete
path is exercised without subprocess machinery (the CI fleet job covers
the ``kill -9`` variant through the real CLI).
"""

from __future__ import annotations

import threading

import pytest

from repro.engine.jobs import CampaignSpec
from repro.engine.runner import CampaignRunner
from repro.engine.stream import EventLog, write_stream_report
from repro.engine.worker import (
    CoordinatorClient,
    CoordinatorRequestError,
    CoordinatorUnavailable,
    _HeartbeatPump,
    run_worker,
)
from repro.errors import ExplorationError
from repro.service import CampaignCoordinator, LeasePolicy, StoreServer
from repro.store import MemoryBackend


@pytest.fixture(scope="module")
def fleet_spec():
    return CampaignSpec(
        name="fleet-smoke",
        suites=("h264",),
        max_rows_shared=1,
        max_cols_shared=1,
        chunk_size=2,
    )


@pytest.fixture(scope="module")
def serial_reference(fleet_spec, tmp_path_factory):
    """The uninterrupted single-machine streamed run every fleet must match."""
    tmp = tmp_path_factory.mktemp("serial")
    runner = CampaignRunner(
        fleet_spec, cache_dir=tmp / "cache", stream_dir=tmp / "stream"
    )
    report, _ = runner.run()
    return write_stream_report(tmp / "report.json", report)


def start_fleet_server(tmp_path, policy=None):
    coordinator = CampaignCoordinator(tmp_path / "coord", policy=policy)
    server = StoreServer(MemoryBackend(), coordinator=coordinator)
    server.start()
    return coordinator, server


def test_single_worker_fleet_matches_serial_bytes(fleet_spec, serial_reference, tmp_path):
    coordinator, server = start_fleet_server(tmp_path)
    try:
        summary = run_worker(
            fleet_spec,
            server.url,
            stream_dir=tmp_path / "stream-w0",
            worker_name="solo",
            output=tmp_path / "report-w0.json",
            cache_dir=tmp_path / "cache-w0",
        )
    finally:
        server.close()
        coordinator.close()
    assert summary["waves_completed"] > 0
    assert summary["leases_lost"] == 0
    assert summary["requeues"] == 0
    assert summary["evaluated"] == summary["records_reported"]
    assert (tmp_path / "report-w0.json").read_bytes() == serial_reference
    # The coordinator journal tells the same story as a local stream would.
    events = EventLog.read(
        tmp_path / "coord" / summary["campaign"] / "events.jsonl", strict=True
    )
    types = [event.type for event in events]
    assert types.count("lease") == summary["waves_completed"]
    assert types[-1] == "campaign_end"


def test_two_worker_fleet_both_reports_match_serial(fleet_spec, serial_reference, tmp_path):
    coordinator, server = start_fleet_server(tmp_path)
    summaries = {}
    errors = []

    def drive(tag):
        try:
            summaries[tag] = run_worker(
                fleet_spec,
                server.url,
                stream_dir=tmp_path / f"stream-{tag}",
                worker_name=tag,
                output=tmp_path / f"report-{tag}.json",
                cache_dir=tmp_path / f"cache-{tag}",
                poll_interval=0.05,
            )
        except Exception as exc:  # surfaced below; threads must not die silently
            errors.append((tag, exc))

    threads = [threading.Thread(target=drive, args=(tag,)) for tag in ("w0", "w1")]
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=600)
    finally:
        server.close()
        coordinator.close()
    assert not errors, errors
    total_waves = sum(s["waves_completed"] for s in summaries.values())
    done = coordinator.status(summaries["w0"]["campaign"])["waves"]["done"]
    assert total_waves == done  # every wave completed exactly once
    # Independent finalize passes, identical bytes: the fleet is invisible.
    assert (tmp_path / "report-w0.json").read_bytes() == serial_reference
    assert (tmp_path / "report-w1.json").read_bytes() == serial_reference


def test_abandoned_lease_is_requeued_and_report_still_matches(
    fleet_spec, serial_reference, tmp_path
):
    """A worker that leases a wave and goes silent (our raw client) costs
    the fleet one lease timeout; the survivor re-leases the wave and the
    final report is still byte-identical to serial."""
    policy = LeasePolicy(lease_timeout=0.4, heartbeat_interval=0.1, max_attempts=5)
    coordinator, server = start_fleet_server(tmp_path, policy=policy)
    try:
        ghost = CoordinatorClient(server.url)
        campaign = ghost.submit(fleet_spec.as_payload())["campaign"]
        ghost_id = ghost.register(campaign, "ghost")["worker"]
        grant = ghost.lease(campaign, ghost_id)
        assert grant["status"] == "leased"
        ghost.close()  # never heartbeats, never completes

        summary = run_worker(
            fleet_spec,
            server.url,
            stream_dir=tmp_path / "stream-survivor",
            worker_name="survivor",
            output=tmp_path / "report.json",
            cache_dir=tmp_path / "cache-survivor",
            poll_interval=0.05,
        )
    finally:
        server.close()
        coordinator.close()
    assert summary["requeues"] >= 1
    status = coordinator.status(campaign)
    assert status["complete"] is True
    assert (tmp_path / "report.json").read_bytes() == serial_reference
    # The requeue is journaled: the ghost's wave shows a second attempt.
    events = EventLog.read(tmp_path / "coord" / campaign / "events.jsonl")
    requeues = [e for e in events if e.type == "requeue"]
    assert requeues and requeues[0].data["lease"] == grant["lease"]


# ----------------------------------------------------------------------
# Client and heartbeat pump edges
# ----------------------------------------------------------------------
def test_client_raises_unavailable_when_nothing_listens():
    client = CoordinatorClient("127.0.0.1:9", retries=1, backoff=0.01)
    with pytest.raises(CoordinatorUnavailable, match="unreachable"):
        client.status("deadbeef")


def test_client_rejects_non_http_urls():
    with pytest.raises(ExplorationError, match="http://"):
        CoordinatorClient("https://coordinator.example")


def test_heartbeat_pump_flags_a_lost_lease(fleet_spec, tmp_path):
    coordinator, server = start_fleet_server(tmp_path)
    try:
        client = CoordinatorClient(server.url)
        campaign = client.submit(fleet_spec.as_payload())["campaign"]
        pump = _HeartbeatPump(client, campaign, "no-such-lease", interval=0.02)
        pump.start()
        deadline = threading.Event()
        for _ in range(200):
            if pump.lost:
                break
            deadline.wait(0.01)
        pump.stop()
        client.close()
    finally:
        server.close()
        coordinator.close()
    assert pump.lost is True  # the 409 stopped the pump


def test_worker_409_surfaces_as_request_error(fleet_spec, tmp_path):
    coordinator, server = start_fleet_server(tmp_path)
    try:
        client = CoordinatorClient(server.url)
        campaign = client.submit(fleet_spec.as_payload())["campaign"]
        with pytest.raises(CoordinatorRequestError) as err:
            client.heartbeat(campaign, "bogus")
        assert err.value.status == 409
        client.close()
    finally:
        server.close()
        coordinator.close()


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
def test_cli_worker_mode_flag_validation(capsys):
    from repro.engine.__main__ import main

    assert main(["--suite", "h264", "--worker"]) == 2
    assert "--coordinator" in capsys.readouterr().err
    assert main(["--suite", "h264", "--coordinator", "127.0.0.1:1"]) == 2
    assert "--worker" in capsys.readouterr().err
    assert (
        main(["--suite", "h264", "--worker", "--coordinator", "127.0.0.1:1", "--resume"])
        == 2
    )
    assert "implicit" in capsys.readouterr().err
