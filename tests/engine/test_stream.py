"""Tests for the streaming campaign mode: events, checkpoints, resume."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.engine.checkpoint import CampaignCheckpoint, campaign_fingerprint
from repro.engine.jobs import CampaignSpec
from repro.engine.runner import CampaignRunner
from repro.engine.stream import (
    EVENT_TYPES,
    AsyncPrefetcher,
    CampaignStreamController,
    EventLog,
    replay_events,
    write_stream_report,
)
from repro.errors import ExplorationError


@pytest.fixture(scope="module")
def small_spec():
    """A fast streamed campaign: two H.264 kernels, three waves."""
    return CampaignSpec(
        name="stream-smoke",
        suites=("h264",),
        max_rows_shared=1,
        max_cols_shared=1,
        chunk_size=2,
    )


def run_streamed(spec, tmp, tag, resume=False):
    runner = CampaignRunner(
        spec,
        cache_dir=tmp / f"cache-{tag}",
        stream_dir=tmp / f"stream-{tag}",
        resume=resume,
    )
    report, results = runner.run()
    return runner, report, results


# ----------------------------------------------------------------------
# Event log
# ----------------------------------------------------------------------
def test_event_log_round_trip_and_sequence_continuation(tmp_path):
    path = tmp_path / "events.jsonl"
    with EventLog(path) as log:
        log.emit("campaign_start", campaign="x", suites=["h264"])
        log.emit("wave_start", suite="h264", wave=0, jobs=2)
    # Reopening continues the sequence instead of restarting it.
    with EventLog(path) as log:
        event = log.emit("wave_end", suite="h264", wave=0, results=2, rejected=0)
        assert event.sequence == 2
    events = EventLog.read(path, strict=True)
    assert [e.type for e in events] == ["campaign_start", "wave_start", "wave_end"]
    assert [e.sequence for e in events] == [0, 1, 2]
    assert events[1].data == {"suite": "h264", "wave": 0, "jobs": 2}


def test_event_log_rejects_unknown_types(tmp_path):
    with EventLog(tmp_path / "events.jsonl") as log:
        with pytest.raises(ValueError, match="unknown event type"):
            log.emit("wave_exploded")


def test_event_log_is_single_writer(tmp_path):
    """A second writer on one journal fails loudly, naming the holder."""
    path = tmp_path / "events.jsonl"
    log = EventLog(path)
    try:
        log.emit("campaign_start", campaign="x")
        with pytest.raises(ExplorationError, match="single-writer") as err:
            EventLog(path)
        assert f"pid {os.getpid()}" in str(err.value)
    finally:
        log.close()
    # Closing releases the flock: the next writer continues the sequence.
    with EventLog(path) as successor:
        assert successor.emit("campaign_end", campaign="x").sequence == 1


def test_event_log_refuses_to_emit_from_a_forked_child(tmp_path, monkeypatch):
    with EventLog(tmp_path / "events.jsonl") as log:
        log.emit("campaign_start", campaign="x")
        monkeypatch.setattr(log, "_pid", os.getpid() + 1)  # simulate the fork
        with pytest.raises(ExplorationError, match="fork"):
            log.emit("campaign_end", campaign="x")


def test_event_log_survives_a_torn_tail(tmp_path):
    path = tmp_path / "events.jsonl"
    with EventLog(path) as log:
        log.emit("campaign_start", campaign="x")
    with path.open("a", encoding="utf-8") as handle:
        handle.write('{"v":1,"seq":1,"type":"wave_st')  # the crash, mid-line
    assert len(EventLog.read(path)) == 1  # torn line skipped
    with EventLog(path) as log:  # reopening heals the missing newline
        log.emit("campaign_end", campaign="x")
    events = EventLog.read(path)
    assert [e.type for e in events] == ["campaign_start", "campaign_end"]
    assert events[-1].sequence == 1


def test_replay_rejects_wave_end_without_start(tmp_path):
    path = tmp_path / "events.jsonl"
    with EventLog(path) as log:
        log.emit("campaign_start", campaign="x")
        log.emit("wave_end", suite="h264", wave=3, results=0, rejected=0)
    with pytest.raises(ExplorationError, match="without a wave_start"):
        replay_events(EventLog.read(path))


def test_replay_rejects_orphan_events(tmp_path):
    path = tmp_path / "events.jsonl"
    with EventLog(path) as log:
        log.emit("wave_start", suite="h264", wave=0, jobs=1)
    with pytest.raises(ExplorationError, match="before any campaign_start"):
        replay_events(EventLog.read(path))


# ----------------------------------------------------------------------
# Streamed campaigns
# ----------------------------------------------------------------------
def test_streamed_campaign_journals_and_checkpoints(small_spec, tmp_path):
    runner, report, _ = run_streamed(small_spec, tmp_path, "a")
    stream_dir = tmp_path / "stream-a"
    events = EventLog.read(stream_dir / "events.jsonl", strict=True)
    assert {event.type for event in events} <= set(EVENT_TYPES)
    assert events[0].type == "campaign_start"
    assert events[-1].type == "campaign_end"

    replay = replay_events(events)
    assert replay.campaigns == 1
    assert replay.completed_campaigns == 1
    assert replay.waves_completed["h264"] == runner.stream_summary["waves"]
    # One result event per distinct job (candidates + the base point).
    assert replay.results["h264"] == report.total_jobs

    checkpoint = CampaignCheckpoint.load(stream_dir / "checkpoint.json")
    assert checkpoint is not None
    assert checkpoint.fingerprint == campaign_fingerprint(small_spec)
    suite = checkpoint.suites["h264"]
    assert suite.complete
    assert len(suite.records) == report.total_jobs
    # Replaying the frontier_update events reproduces the checkpointed
    # frontier exactly.
    assert replay.frontier_vectors("h264") == suite.frontier
    assert suite.frontier  # the feasible base point at least


def test_stream_report_is_byte_identical_across_fresh_runs(small_spec, tmp_path):
    _, report_a, _ = run_streamed(small_spec, tmp_path, "a")
    _, report_b, _ = run_streamed(small_spec, tmp_path, "b")
    bytes_a = write_stream_report(tmp_path / "a.json", report_a)
    bytes_b = write_stream_report(tmp_path / "b.json", report_b)
    assert bytes_a == bytes_b
    payload = json.loads(bytes_a)
    assert payload["campaign"] == "stream-smoke"
    assert payload["suites"][0]["selected"] is not None
    assert "wall_seconds" not in json.dumps(payload)  # no timings leak in


class _CrashAfterWave:
    """Wrap a suite observer so the campaign dies after N live waves."""

    def __init__(self, inner, waves_before_crash):
        self.inner = inner
        self.waves_before_crash = waves_before_crash

    def __getattr__(self, name):
        return getattr(self.inner, name)

    def wave_finished(self, outcome):
        self.inner.wave_finished(outcome)
        if outcome.wave_index + 1 >= self.waves_before_crash:
            raise KeyboardInterrupt("simulated mid-campaign crash")


def test_crashed_campaign_resumes_to_a_byte_identical_report(
    small_spec, tmp_path, monkeypatch
):
    # Reference: an uninterrupted streamed run.
    _, reference, _ = run_streamed(small_spec, tmp_path, "ref")
    reference_bytes = write_stream_report(tmp_path / "ref.json", reference)
    reference_waves = replay_events(
        EventLog.read(tmp_path / "stream-ref" / "events.jsonl")
    ).waves_completed["h264"]
    assert reference_waves >= 2  # the crash below must land mid-campaign

    # The victim: dies after its first completed wave.
    original = CampaignStreamController.suite_observer

    def crashing_observer(self, suite):
        return _CrashAfterWave(original(self, suite), waves_before_crash=1)

    monkeypatch.setattr(CampaignStreamController, "suite_observer", crashing_observer)
    with pytest.raises(KeyboardInterrupt):
        run_streamed(small_spec, tmp_path, "victim")
    monkeypatch.undo()

    checkpoint = CampaignCheckpoint.load(tmp_path / "stream-victim" / "checkpoint.json")
    assert checkpoint is not None
    partial = len(checkpoint.suites["h264"].records)
    assert 0 < partial < reference.total_jobs  # genuinely mid-campaign

    # Resume in the same stream directory: only unfinished jobs run.
    runner, resumed, _ = run_streamed(small_spec, tmp_path, "victim", resume=True)
    assert runner.stream_summary["resumed"] is True
    assert runner.stream_summary["checkpoint_hits"] == partial
    assert runner.stream_summary["waves"] < reference_waves  # waves skipped
    resumed_bytes = write_stream_report(tmp_path / "resumed.json", resumed)
    assert resumed_bytes == reference_bytes


def test_resume_refuses_a_different_campaign(small_spec, tmp_path):
    run_streamed(small_spec, tmp_path, "a")
    other = CampaignSpec(
        name="other",
        suites=("h264",),
        max_rows_shared=1,
        max_cols_shared=0,
        chunk_size=2,
    )
    with pytest.raises(ExplorationError, match="different campaign"):
        CampaignRunner(
            other, cache_dir=tmp_path / "cache-x", stream_dir=tmp_path / "stream-a", resume=True
        ).run()


def test_resume_without_stream_dir_is_rejected(small_spec, tmp_path):
    with pytest.raises(ValueError, match="needs stream_dir"):
        CampaignRunner(small_spec, cache_dir=tmp_path / "cache", resume=True)


def test_checkpoint_fragment_cache_matches_plain_serialisation(tmp_path):
    """The cached per-suite fragments must compose to exactly the bytes a
    plain sorted-keys json.dumps of the document would produce."""
    checkpoint = CampaignCheckpoint(fingerprint="f" * 64)
    active = checkpoint.suite("dsp")
    active.records["k1"] = {"label": "a", "area_slices": 1.5, "stalls": {}}
    active.frontier = [[1.0, 2.0], [2.0, 1.0]]
    done = checkpoint.suite("h264")
    done.complete = True

    def plain():
        return json.dumps(checkpoint.as_dict(), sort_keys=True, separators=(",", ":"))

    assert checkpoint._document_text() == plain()
    # Mutate the active suite: the cache must notice and re-serialise.
    active.records["k2"] = {"label": "b", "area_slices": 2.5, "stalls": {}}
    active.waves_done += 1
    assert checkpoint._document_text() == plain()
    # And a save/load round trip preserves everything.
    path = tmp_path / "checkpoint.json"
    checkpoint.save(path)
    loaded = CampaignCheckpoint.load(path)
    assert loaded.as_dict() == checkpoint.as_dict()


def test_resume_with_no_checkpoint_starts_fresh(small_spec, tmp_path):
    runner, report, _ = run_streamed(small_spec, tmp_path, "fresh", resume=True)
    assert runner.stream_summary["resumed"] is False
    assert runner.stream_summary["checkpoint_hits"] == 0
    assert report.suites[0].selected is not None


# ----------------------------------------------------------------------
# Async prefetcher
# ----------------------------------------------------------------------
def test_async_prefetcher_runs_tasks_in_order_and_records_errors():
    with AsyncPrefetcher() as prefetcher:
        seen = []
        first = prefetcher.submit(lambda: seen.append("a") or "a", label="first")
        second = prefetcher.submit(lambda: seen.append("b") or "b")
        failing = prefetcher.submit(lambda: 1 / 0, label="boom")
        assert first.wait() == "a"
        assert second.wait() == "b"
        assert failing.wait() is None
        assert isinstance(failing.error, ZeroDivisionError)
        assert seen == ["a", "b"]
        prefetcher.drain()
    assert prefetcher.stats() == {"submitted": 3, "completed": 3, "errors": 1}
    with pytest.raises(RuntimeError, match="closed"):
        prefetcher.submit(lambda: None)


def test_streamed_campaign_prefetches_next_suite_artifacts(tmp_path):
    """With two suites, the second suite's artifacts are warmed in the
    background while the first explores: its profile fetches all hit."""
    spec = CampaignSpec(
        name="two-suites",
        suites=("h264", "paper"),
        max_rows_shared=1,
        max_cols_shared=0,
        chunk_size=4,
    )
    # Seed the artifact store so there is something to prefetch.
    seed = CampaignRunner(spec, artifact_dir=tmp_path / "store")
    seed.run()
    warm = CampaignRunner(
        spec, artifact_dir=tmp_path / "store", stream_dir=tmp_path / "stream"
    )
    report, _ = warm.run()
    assert report.artifact_misses == 0
    assert report.artifact_hits > 0


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
def test_cli_stream_writes_deterministic_report_and_summary(tmp_path, capsys):
    from repro.engine.__main__ import main

    output = tmp_path / "report.json"
    argv = [
        "--suite", "h264",
        "--max-rows-shared", "1",
        "--max-cols-shared", "1",
        "--cache-dir", str(tmp_path / "cache"),
        "--stream", str(tmp_path / "stream"),
        "--output", str(output),
    ]
    assert main(argv) == 0
    printed = capsys.readouterr().out
    assert "stream: " in printed
    assert "resumed=False" in printed
    payload = json.loads(output.read_text())
    assert payload["campaign"] == "campaign"
    assert "wall_seconds" not in payload  # deterministic report only
    first_bytes = output.read_bytes()

    # --resume on the finished stream: everything from the checkpoint,
    # byte-identical output.
    assert main(argv + ["--resume"]) == 0
    printed = capsys.readouterr().out
    assert "resumed=True" in printed
    assert output.read_bytes() == first_bytes


def test_cli_resume_requires_stream(capsys):
    from repro.engine.__main__ import main

    assert main(["--suite", "h264", "--resume", "--no-cache", "--quiet"]) == 2
    assert "--resume" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Kill (-TERM and -KILL) / resume, through the real CLI
# ----------------------------------------------------------------------
def _engine_argv(workdir: Path, stream: Path, output: Path, resume=False):
    argv = [
        sys.executable,
        "-m",
        "repro.engine",
        "--suite", "dsp",
        "--suite", "h264",
        "--max-rows-shared", "3",
        "--max-cols-shared", "3",
        "--stages", "1", "2", "3",
        "--chunk-size", "2",
        "--cache-dir", str(workdir / "cache"),
        "--stream", str(stream),
        "--output", str(output),
        "--quiet",
    ]
    if resume:
        argv.append("--resume")
    return argv


def _wave_end_count(events_path: Path) -> int:
    if not events_path.is_file():
        return 0
    return sum(1 for event in EventLog.read(events_path) if event.type == "wave_end")


def _subprocess_env():
    import repro

    source_root = Path(repro.__file__).resolve().parents[1]
    return dict(os.environ, PYTHONPATH=str(source_root))


@pytest.fixture(scope="module")
def cli_reference(tmp_path_factory):
    """The uninterrupted CLI run both kill variants compare against."""
    tmp = tmp_path_factory.mktemp("cli-ref")
    env = _subprocess_env()
    reference_out = tmp / "reference.json"
    subprocess.run(
        _engine_argv(tmp / "ref", tmp / "stream-ref", reference_out),
        env=env, check=True, timeout=600,
    )
    reference_waves = _wave_end_count(tmp / "stream-ref" / "events.jsonl")
    assert reference_waves >= 4
    return reference_out.read_bytes(), reference_waves


@pytest.mark.parametrize(
    "kill_signal", [signal.SIGTERM, signal.SIGKILL], ids=["sigterm", "sigkill"]
)
def test_killed_campaign_then_resume_is_byte_identical(
    tmp_path, cli_reference, kill_signal
):
    """SIGTERM gets a chance to clean up; SIGKILL gets none (the journal's
    torn-tail heal and the checkpoint's write-then-rename carry it).  Both
    must resume to the reference bytes."""
    reference_bytes, reference_waves = cli_reference
    env = _subprocess_env()

    # The victim: killed once its first waves have checkpointed.
    victim_stream = tmp_path / "stream-victim"
    victim_out = tmp_path / "victim.json"
    victim = subprocess.Popen(
        _engine_argv(tmp_path / "victim", victim_stream, victim_out), env=env
    )
    events_path = victim_stream / "events.jsonl"
    deadline = time.monotonic() + 300
    while time.monotonic() < deadline:
        if victim.poll() is not None:
            pytest.fail("the victim campaign finished before it could be killed")
        if _wave_end_count(events_path) >= 2:
            break
        time.sleep(0.002)
    victim.send_signal(kill_signal)
    assert victim.wait(timeout=60) != 0
    assert not victim_out.exists()  # it never reached the report
    killed_waves = _wave_end_count(events_path)
    assert killed_waves >= 1

    # Resume: completed waves come from the checkpoint, not re-evaluation.
    subprocess.run(
        _engine_argv(tmp_path / "victim", victim_stream, victim_out, resume=True),
        env=env, check=True, timeout=600,
    )
    assert victim_out.read_bytes() == reference_bytes
    resumed_waves = _wave_end_count(events_path) - killed_waves
    assert resumed_waves < reference_waves  # >=1 wave skipped via checkpoint


# ----------------------------------------------------------------------
# Kill -9 convergence through the coordinator requeue path
# ----------------------------------------------------------------------
def _worker_argv(coordinator_url, workdir: Path, tag: str, lease_delay=0.0):
    return [
        sys.executable,
        "-m",
        "repro.engine",
        "--suite", "h264",
        "--max-rows-shared", "1",
        "--max-cols-shared", "1",
        "--chunk-size", "2",
        "--worker",
        "--coordinator", coordinator_url,
        "--worker-name", tag,
        "--lease-delay", str(lease_delay),
        "--cache-dir", str(workdir / f"cache-{tag}"),
        "--stream", str(workdir / f"stream-{tag}"),
        "--output", str(workdir / f"report-{tag}.json"),
        "--quiet",
    ]


def test_sigkill_worker_mid_wave_requeues_and_fleet_converges(tmp_path):
    """The other half of the kill -9 story: a fleet worker dies holding a
    lease, the coordinator requeues the wave after the lease timeout, and
    a surviving worker's report is byte-identical to the serial run."""
    from repro.service import CampaignCoordinator, LeasePolicy, StoreServer
    from repro.store import MemoryBackend

    env = _subprocess_env()

    # Serial reference for the small fleet spec, through the same CLI.
    serial_out = tmp_path / "serial.json"
    subprocess.run(
        [
            sys.executable, "-m", "repro.engine",
            "--suite", "h264",
            "--max-rows-shared", "1",
            "--max-cols-shared", "1",
            "--chunk-size", "2",
            "--cache-dir", str(tmp_path / "cache-serial"),
            "--stream", str(tmp_path / "stream-serial"),
            "--output", str(serial_out),
            "--quiet",
        ],
        env=env, check=True, timeout=600,
    )

    policy = LeasePolicy(lease_timeout=1.0, heartbeat_interval=0.2, max_attempts=5)
    coordinator = CampaignCoordinator(tmp_path / "coord", policy=policy)
    server = StoreServer(MemoryBackend(), coordinator=coordinator).start()
    victim = None
    try:
        # The victim parks in its --lease-delay window while holding a
        # live (heartbeating) lease — kill -9 lands reliably mid-wave.
        victim = subprocess.Popen(
            _worker_argv(server.url, tmp_path, "victim", lease_delay=120), env=env
        )
        deadline = time.monotonic() + 120
        campaign = None
        while time.monotonic() < deadline:
            if victim.poll() is not None:
                pytest.fail("the victim worker exited before it could be killed")
            ids = coordinator.campaign_ids()
            if ids:
                campaign = ids[0]
                if coordinator.status(campaign)["waves"]["leased"] >= 1:
                    break
            time.sleep(0.01)
        assert campaign is not None, "the victim never leased a wave"
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=60)

        subprocess.run(
            _worker_argv(server.url, tmp_path, "survivor"),
            env=env, check=True, timeout=600,
        )
        status = coordinator.status(campaign)
    finally:
        if victim is not None and victim.poll() is None:
            victim.kill()
        server.close()
        coordinator.close()

    assert status["complete"] is True
    assert status["requeues"] >= 1
    assert (tmp_path / "report-survivor.json").read_bytes() == serial_out.read_bytes()
    # The requeue is journaled for the trace/dashboard tooling.
    events = EventLog.read(tmp_path / "coord" / campaign / "events.jsonl")
    assert any(event.type == "requeue" for event in events)
