"""Flow configs: loading, validation diagnostics, and the example flows."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.errors import FlowValidationError
from repro.flowgraph.config import (
    flow_from_config,
    load_flow_config,
    resolve_condition,
)
from repro.flowgraph.core import Flow, FlowContext, Node
from repro.mapping.pipeline import MappingPipeline


# ----------------------------------------------------------------------
# Toy registry
# ----------------------------------------------------------------------
def toy_registry():
    """Fresh-node factories for a tiny fan-out/join flow over ``x``."""
    return {
        "start": lambda: Node("start", lambda ctx: ctx["x"], inputs=("x",), output="seed"),
        "double": lambda: Node(
            "double", lambda ctx: ctx["seed"] * 2, inputs=("seed",), output="scaled"
        ),
        "triple": lambda: Node(
            "triple", lambda ctx: ctx["seed"] * 3, inputs=("seed",), output="scaled"
        ),
        "report": lambda: Node(
            "report", lambda ctx: {"value": ctx["scaled"]}, inputs=("scaled",), output="out"
        ),
    }


TOY_CONDITIONS = {"positive": lambda ctx: ctx["x"] > 0}


def toy_config(**overrides):
    config = {
        "name": "toy",
        "edges": ["start >> (double | triple) >> report"],
        "nodes": {
            "double": {"when": "positive"},
            "triple": {"when": "!positive"},
        },
    }
    config.update(overrides)
    return config


def build(config):
    return flow_from_config(
        config, registry=toy_registry(), conditions=TOY_CONDITIONS, inputs=("x",)
    )


def run(flow, x):
    ctx = FlowContext({"x": x}, keys={"x": repr(x)})
    return flow.run(context=ctx)


# ----------------------------------------------------------------------
# Happy path
# ----------------------------------------------------------------------
def test_config_builds_a_routed_flow():
    flow = build(toy_config())
    assert isinstance(flow, Flow)
    assert flow.name == "toy"
    assert run(flow, 5)["out"] == {"value": 10}  # positive -> double
    assert run(flow, -5)["out"] == {"value": -15}  # !positive -> triple


def test_condition_labels_survive_into_nodes():
    flow = build(toy_config())
    by_name = {node.name: node for node in flow.nodes}
    assert by_name["double"].when_label == "positive"
    assert by_name["triple"].when_label == "!positive"


def test_retry_and_persistence_overrides():
    config = toy_config()
    config["nodes"]["double"]["retry"] = {"max_attempts": 3, "backoff_s": 0.5}
    config["nodes"]["double"]["persistent"] = False
    flow = build(config)
    node = {n.name: n for n in flow.nodes}["double"]
    assert node.retry.max_attempts == 3
    assert node.retry.backoff_s == 0.5
    assert node.persistent is False


def test_selector_string_shorthand_and_object_form():
    shorthand = build(toy_config(select={"scaled": "value"}))
    assert shorthand.select["scaled"].metric == "value"
    assert shorthand.select["scaled"].mode == "min"

    explicit = build(toy_config(select={"scaled": {"metric": "value", "mode": "max"}}))
    assert explicit.select["scaled"].mode == "max"


def test_config_inputs_merge_with_caller_inputs():
    flow = build(toy_config(inputs=["x", "budget"]))
    assert list(flow.inputs) == ["x", "budget"]


def test_fresh_nodes_per_flow():
    """Per-flow overrides never leak between flows built from one registry."""
    registry = toy_registry()
    first = flow_from_config(
        toy_config(), registry=registry, conditions=TOY_CONDITIONS, inputs=("x",)
    )
    second = flow_from_config(
        {"name": "bare", "edges": ["start >> double >> report"]},
        registry=registry,
        conditions=TOY_CONDITIONS,
        inputs=("x",),
    )
    assert {n.name: n for n in second.nodes}["double"].when is None
    assert {n.name: n for n in first.nodes}["double"].when is not None


# ----------------------------------------------------------------------
# load_flow_config
# ----------------------------------------------------------------------
def test_load_flow_config_copies_mappings():
    source = {"edges": ["a"]}
    loaded = load_flow_config(source)
    assert loaded == source and loaded is not source


def test_load_flow_config_reads_json_paths(tmp_path):
    path = tmp_path / "flow.json"
    path.write_text(json.dumps(toy_config()))
    assert load_flow_config(path)["name"] == "toy"
    assert load_flow_config(str(path))["name"] == "toy"


def test_load_flow_config_missing_file(tmp_path):
    with pytest.raises(FlowValidationError, match="cannot read flow config"):
        load_flow_config(tmp_path / "absent.json")


def test_load_flow_config_invalid_json(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{not json")
    with pytest.raises(FlowValidationError, match="not valid JSON"):
        load_flow_config(path)


def test_load_flow_config_rejects_non_objects(tmp_path):
    path = tmp_path / "list.json"
    path.write_text("[1, 2]")
    with pytest.raises(FlowValidationError, match="must hold a JSON object, not list"):
        load_flow_config(path)


# ----------------------------------------------------------------------
# resolve_condition
# ----------------------------------------------------------------------
def test_resolve_condition_negation():
    ctx = FlowContext({"x": 1})
    assert resolve_condition("positive", TOY_CONDITIONS)(ctx) is True
    assert resolve_condition("!positive", TOY_CONDITIONS)(ctx) is False


def test_resolve_condition_unknown_lists_available():
    with pytest.raises(FlowValidationError, match=r"unknown flow condition 'missing'"):
        resolve_condition("!missing", TOY_CONDITIONS)
    with pytest.raises(FlowValidationError, match=r"available: \['positive'\]"):
        resolve_condition("missing", TOY_CONDITIONS)


# ----------------------------------------------------------------------
# Validation diagnostics
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "mutate, fragment",
    [
        (lambda c: c.update(surprise=1), "flow config has unknown key(s) ['surprise']"),
        (lambda c: c.pop("edges"), "needs an 'edges' entry"),
        (lambda c: c.update(nodes=["double"]), "'nodes' must map node names to objects"),
        (
            lambda c: c["nodes"].update(ghost={}),
            "configures node 'ghost', which no edge expression mentions",
        ),
        (
            lambda c: c["nodes"]["double"].update(color="red"),
            "config of node 'double' has unknown key(s) ['color']",
        ),
        (
            lambda c: c["nodes"]["double"].update(when=7),
            "'when' must be a condition name string",
        ),
        (
            lambda c: c["nodes"]["double"].update(retry=3),
            "'retry' must be an object",
        ),
        (
            lambda c: c["nodes"]["double"].update(retry={"tries": 3}),
            "retry policy of node 'double' has unknown key(s) ['tries']",
        ),
        (
            lambda c: c.update(select={"scaled": {"mode": "min"}}),
            "selector for output 'scaled' needs a 'metric'",
        ),
        (
            lambda c: c.update(select={"scaled": {"metric": "value", "goal": "min"}}),
            "selector for output 'scaled' has unknown key(s) ['goal']",
        ),
        (
            lambda c: c.update(select={"scaled": ["value"]}),
            "must be a metric string or an object, not list",
        ),
    ],
)
def test_config_validation_names_the_problem(mutate, fragment):
    config = toy_config()
    mutate(config)
    with pytest.raises(FlowValidationError) as excinfo:
        build(config)
    assert fragment in str(excinfo.value)


def test_unregistered_node_cites_expression_and_registry():
    config = toy_config(edges=["start >> warp >> report"], nodes={})
    with pytest.raises(FlowValidationError) as excinfo:
        build(config)
    message = str(excinfo.value)
    assert "no registered node named 'warp'" in message
    assert "'start >> warp >> report'" in message
    assert "registered:" in message


def test_unknown_condition_in_node_config():
    config = toy_config()
    config["nodes"]["double"]["when"] = "lucky"
    with pytest.raises(FlowValidationError, match="unknown flow condition 'lucky'"):
        build(config)


# ----------------------------------------------------------------------
# The shipped example flows
# ----------------------------------------------------------------------
EXAMPLE_FLOWS = Path(__file__).resolve().parents[2] / "examples" / "flows"


@pytest.mark.parametrize("example", ["skip_rearrange", "race_mappers"])
def test_example_flows_build_against_the_mapping_registry(example):
    pipeline = MappingPipeline(flow=EXAMPLE_FLOWS / f"{example}.json")
    description = pipeline.describe_flow()
    assert description["name"] == example
    assert "build_dfg" in description["nodes"]
    assert any("generate_context" in text for text in description["edges"])


def test_race_mappers_example_declares_the_selector():
    pipeline = MappingPipeline(flow=EXAMPLE_FLOWS / "race_mappers.json")
    selector = pipeline.flow.select["rearranged"]
    assert selector.metric == "summary.cycles"
    assert selector.mode == "min"
