"""Flow runtime: validation diagnostics, routing, racing, retry, caching."""

from __future__ import annotations

import pytest

from repro.engine.artifacts import ArtifactStore
from repro.errors import (
    FlowExecutionError,
    FlowRoutingError,
    FlowValidationError,
)
from repro.flowgraph.core import (
    Flow,
    FlowContext,
    Node,
    NodeEvent,
    RetryPolicy,
    Selector,
    stage_key,
)
from repro.flowgraph.stats import PipelineStats


class CountingFn:
    """A compute callable that counts invocations."""

    def __init__(self, fn):
        self.fn = fn
        self.calls = 0

    def __call__(self, ctx):
        self.calls += 1
        return self.fn(ctx)


def seeded_context(**values):
    """A context whose seeds are pre-keyed by repr (toy fingerprints)."""
    return FlowContext(values, keys={name: repr(value) for name, value in values.items()})


def linear_flow(double, square):
    return Flow(
        [
            Node("double", double, inputs=("x",), output="doubled"),
            Node("square", square, inputs=("doubled",), output="squared"),
        ],
        "double >> square",
        name="toy",
        inputs=("x",),
    )


# ----------------------------------------------------------------------
# Execution + memoisation
# ----------------------------------------------------------------------
def test_linear_flow_resolves_and_memoises():
    double = CountingFn(lambda ctx: ctx["x"] * 2)
    square = CountingFn(lambda ctx: ctx["doubled"] ** 2)
    flow = linear_flow(double, square)
    store = ArtifactStore(None)
    stats = PipelineStats()

    ctx = flow.run(context=seeded_context(x=3), store=store, stats=stats)
    assert ctx["squared"] == 36
    assert ctx.executed == ["double", "square"]
    assert stats.timing("double").misses == 1
    assert stats.timing("square").misses == 1

    # Same store, fresh context: the terminal output is a store hit and
    # the upstream node is never touched (key-first lazy resolution).
    warm = flow.run(context=seeded_context(x=3), store=store, stats=stats)
    assert warm["squared"] == 36
    assert (double.calls, square.calls) == (1, 1)
    assert stats.timing("double").lookups == 1  # the cold miss only
    assert stats.timing("square").hits == 1


def test_keys_derive_from_upstream_keys_not_values():
    """A warm store serves a downstream node without materialising its inputs."""
    double = CountingFn(lambda ctx: ctx["x"] * 2)
    square = CountingFn(lambda ctx: ctx["doubled"] ** 2)
    flow = linear_flow(double, square)
    store = ArtifactStore(None)
    flow.run(context=seeded_context(x=3), store=store)

    double.calls = square.calls = 0
    ctx = seeded_context(x=3)
    artifact = flow.resolve("squared", context=ctx, store=store)
    assert artifact.value == 36
    assert artifact.from_store
    assert double.calls == 0 and square.calls == 0
    # The upstream value was never materialised — key-first resolution.
    assert "doubled" not in ctx.values


def test_keys_match_stage_key_formula():
    double = CountingFn(lambda ctx: ctx["x"] * 2)
    square = CountingFn(lambda ctx: ctx["doubled"] ** 2)
    flow = linear_flow(double, square)
    ctx = flow.run(context=seeded_context(x=3))
    doubled_key = stage_key("double", x=repr(3))
    assert ctx.key_of("doubled") == doubled_key
    assert ctx.key_of("squared") == stage_key("square", doubled=doubled_key)


def test_keys_for_enumerates_without_executing():
    double = CountingFn(lambda ctx: ctx["x"] * 2)
    square = CountingFn(lambda ctx: ctx["doubled"] ** 2)
    flow = linear_flow(double, square)
    keys = flow.keys_for(context=seeded_context(x=3))
    assert set(keys) == {"double", "square"}
    assert double.calls == 0 and square.calls == 0


def test_unseeded_flow_input_errors():
    flow = linear_flow(lambda ctx: ctx["x"] * 2, lambda ctx: ctx["doubled"] ** 2)
    # Key derivation comes first, so a missing key is diagnosed even when
    # the value is present...
    with pytest.raises(FlowValidationError, match="seed FlowContext.keys"):
        flow.run(context=FlowContext(values={"x": 3}))
    # ...and a keyed-but-valueless seed fails at materialisation time.
    with pytest.raises(KeyError, match="flow input 'x' was not provided"):
        flow.run(context=FlowContext(keys={"x": "3"}))


def test_non_persistent_nodes_stay_out_of_the_backend(tmp_path):
    flow = Flow(
        [Node("scratch", lambda ctx: 41, output="answer", persistent=False)],
        name="np",
    )
    store = ArtifactStore(tmp_path)
    flow.run(store=store)
    assert list(tmp_path.rglob("*.json")) == []


def test_output_type_is_enforced():
    flow = Flow(
        [Node("bad", lambda ctx: "nope", output="n", output_type=int)],
        name="typed",
    )
    with pytest.raises(FlowExecutionError, match="produced str, expected int"):
        flow.run()


# ----------------------------------------------------------------------
# Conditional routing
# ----------------------------------------------------------------------
def routed_flow(flag):
    return Flow(
        [
            Node("seed", lambda ctx: 1, output="value"),
            Node(
                "left",
                lambda ctx: ctx["value"] + 10,
                inputs=("value",),
                output="out",
                when=lambda ctx: flag["left"],
                when_label="left_on",
            ),
            Node(
                "right",
                lambda ctx: ctx["value"] + 20,
                inputs=("value",),
                output="out",
                when=lambda ctx: flag["right"],
                when_label="right_on",
            ),
        ],
        "seed >> (left | right)",
        name="routed",
    )


def test_conditional_routing_picks_the_eligible_branch():
    flow = routed_flow({"left": False, "right": True})
    ctx = flow.run()
    assert ctx["out"] == 21
    assert ctx.routes == {"out": "right"}
    assert "left" not in ctx.executed


def test_routing_error_names_candidates_and_conditions():
    flow = routed_flow({"left": False, "right": False})
    with pytest.raises(FlowRoutingError) as excinfo:
        flow.run()
    message = str(excinfo.value)
    assert "no branch matched for output 'out'" in message
    assert "left [when left_on]" in message
    assert "right [when right_on]" in message


def test_virtual_node_passes_the_upstream_key_through():
    flow = Flow(
        [
            Node("make", lambda ctx: 5, output="a"),
            Node(
                "alias",
                inputs=("a",),
                output="b",
                virtual=True,
                key_from="a",
            ),
        ],
        "make >> alias",
        name="virtual",
    )
    ctx = flow.run()
    assert ctx["b"] == 5
    assert ctx.key_of("b") == ctx.key_of("a")
    # Virtual nodes do not touch stats or the store.
    stats = PipelineStats()
    flow.run(stats=stats)
    assert "alias" not in stats.stages


# ----------------------------------------------------------------------
# Racing
# ----------------------------------------------------------------------
def racing_flow(select):
    return Flow(
        [
            Node("seed", lambda ctx: 0, output="value"),
            Node("fast", lambda ctx: {"cost": 3}, inputs=("value",), output="out"),
            Node("slow", lambda ctx: {"cost": 7}, inputs=("value",), output="out"),
        ],
        "seed >> (fast | slow)",
        name="race",
        select=select,
    )


def test_race_keeps_the_selector_winner():
    class Result:
        def __init__(self, cost):
            self.cost = cost

    flow = Flow(
        [
            Node("a", lambda ctx: Result(7), output="out"),
            Node("b", lambda ctx: Result(3), output="out"),
        ],
        "(a | b)",
        name="race",
        select={"out": Selector(metric="cost", mode="min")},
    )
    ctx = flow.run()
    assert ctx["out"].cost == 3
    assert ctx.routes == {"out": "b"}
    assert ctx.raced == {"out": {"a": 7, "b": 3}}
    assert set(ctx.executed) >= {"a", "b"}


def test_race_without_selector_is_a_routing_error():
    flow = racing_flow(select=None)
    with pytest.raises(FlowRoutingError, match="declares no selector"):
        flow.run()


def test_callable_selector_must_choose_a_raced_branch():
    flow = racing_flow(select={"out": lambda candidates, ctx: "nobody"})
    with pytest.raises(FlowRoutingError, match="not one of the raced branches"):
        flow.run()


def test_keys_for_enumerates_every_race_candidate():
    flow = racing_flow(select={"out": Selector(metric="cost")})
    keys = flow.keys_for()
    # Both candidates' own keys enumerate; the raced output's chain stops.
    assert set(keys) == {"seed", "fast", "slow"}


# ----------------------------------------------------------------------
# Retry
# ----------------------------------------------------------------------
def test_single_attempt_raises_the_raw_exception():
    flow = Flow(
        [Node("boom", lambda ctx: 1 / 0, output="n")],
        name="raw",
    )
    with pytest.raises(ZeroDivisionError):
        flow.run()


def test_retry_recovers_from_transient_failures():
    attempts = {"count": 0}

    def flaky(ctx):
        attempts["count"] += 1
        if attempts["count"] < 3:
            raise RuntimeError("transient")
        return 42

    flow = Flow(
        [Node("flaky", flaky, output="n", retry=RetryPolicy(max_attempts=3))],
        name="retry",
    )
    assert flow.run()["n"] == 42
    assert attempts["count"] == 3


def test_retry_exhaustion_names_the_node():
    flow = Flow(
        [
            Node(
                "doomed",
                lambda ctx: (_ for _ in ()).throw(RuntimeError("nope")),
                output="n",
                retry=RetryPolicy(max_attempts=2),
            )
        ],
        name="retry",
    )
    with pytest.raises(FlowExecutionError, match="node 'doomed' failed after 2 attempts"):
        flow.run()


def test_retry_policy_validates_itself():
    with pytest.raises(FlowValidationError, match="max_attempts >= 1"):
        RetryPolicy(max_attempts=0)
    with pytest.raises(FlowValidationError, match="non-negative backoff_s"):
        RetryPolicy(backoff_s=-1.0)
    with pytest.raises(FlowValidationError, match="'min' or 'max'"):
        Selector(metric="cost", mode="median")


# ----------------------------------------------------------------------
# Validation diagnostics
# ----------------------------------------------------------------------
def test_duplicate_node_names_are_rejected():
    with pytest.raises(FlowValidationError, match="declares node 'twin' twice"):
        Flow(
            [
                Node("twin", lambda ctx: 1, output="a"),
                Node("twin", lambda ctx: 2, output="b"),
            ],
            name="dup",
        )


def test_unknown_edge_name_cites_the_expression():
    with pytest.raises(FlowValidationError) as excinfo:
        Flow(
            [Node("a", lambda ctx: 1, output="x")],
            "a >> ghost",
            name="bad",
        )
    message = str(excinfo.value)
    assert "no node named 'ghost'" in message
    assert "'a >> ghost'" in message


def test_duplicate_output_without_group_suggests_alternative_syntax():
    with pytest.raises(FlowValidationError) as excinfo:
        Flow(
            [
                Node("a", lambda ctx: 1, output="x"),
                Node("b", lambda ctx: 2, output="x"),
            ],
            "a >> b",
            name="bad",
        )
    message = str(excinfo.value)
    assert "all produce output 'x'" in message
    assert "(a | b)" in message


def test_group_members_must_share_one_output():
    with pytest.raises(FlowValidationError, match="mixes outputs"):
        Flow(
            [
                Node("a", lambda ctx: 1, output="x"),
                Node("b", lambda ctx: 2, output="y"),
            ],
            "(a | b)",
            name="bad",
        )


def test_undeclared_input_names_node_and_flow_inputs():
    with pytest.raises(FlowValidationError) as excinfo:
        Flow(
            [Node("a", lambda ctx: ctx["mystery"], inputs=("mystery",), output="x")],
            "a",
            name="bad",
            inputs=("kernel",),
        )
    message = str(excinfo.value)
    assert "node 'a' consumes 'mystery'" in message
    assert "['kernel']" in message


def test_cycle_diagnostic_shows_the_path_and_expression():
    with pytest.raises(FlowValidationError) as excinfo:
        Flow(
            [
                Node("a", lambda ctx: ctx["y"], inputs=("y",), output="x"),
                Node("b", lambda ctx: ctx["x"], inputs=("x",), output="y"),
            ],
            "a >> b >> a",
            name="loop",
        )
    message = str(excinfo.value)
    assert "has a cycle" in message
    assert " -> " in message
    assert "'a >> b >> a'" in message


def test_type_mismatch_names_producer_and_consumer():
    with pytest.raises(FlowValidationError) as excinfo:
        Flow(
            [
                Node("ints", lambda ctx: 1, output="x", output_type=int),
                Node(
                    "wants_str",
                    lambda ctx: ctx["x"],
                    inputs=("x",),
                    output="y",
                    input_types={"x": str},
                ),
            ],
            "ints >> wants_str",
            name="typed",
        )
    message = str(excinfo.value)
    assert "node 'wants_str' expects 'x' to be str" in message
    assert "node 'ints' produces int" in message


def test_selector_for_unknown_output_is_rejected():
    with pytest.raises(FlowValidationError, match="selector for 'ghost'"):
        Flow(
            [Node("a", lambda ctx: 1, output="x")],
            name="bad",
            select={"ghost": Selector(metric="cost")},
        )


def test_node_constructor_validation():
    with pytest.raises(FlowValidationError, match="not a valid identifier"):
        Node("no spaces", lambda ctx: 1, output="x")
    with pytest.raises(FlowValidationError, match="needs a compute callable"):
        Node("empty", output="x")
    with pytest.raises(FlowValidationError, match="not among its inputs"):
        Node("keyed", lambda ctx: 1, inputs=("a",), output="x", key_inputs={"k": "b"})
    with pytest.raises(FlowValidationError, match="passes the key of"):
        Node("virt", inputs=("a",), output="x", virtual=True, key_from="b")


# ----------------------------------------------------------------------
# Introspection + observation
# ----------------------------------------------------------------------
def test_dependencies_cover_all_alternative_candidates():
    flow = routed_flow({"left": True, "right": False})
    assert flow.dependencies(("out",)) == ["seed", "left", "right"]


def test_outputs_are_terminal_values():
    flow = linear_flow(lambda ctx: 0, lambda ctx: 0)
    assert flow.outputs == ("squared",)


def test_observer_receives_node_events():
    events = []

    class Recorder:
        def node_finished(self, event):
            events.append(event)

    flow = routed_flow({"left": False, "right": True})
    flow.run(observer=Recorder())
    assert [event.node for event in events] == ["seed", "right"]
    last = events[-1]
    assert isinstance(last, NodeEvent)
    assert last.flow == "routed"
    assert last.output == "out"
    assert last.hit is False
    assert last.routed is True
    assert events[0].routed is False
