"""Pin the artifact-key formulas of the canonical mapping flow.

The warm-store contract (and the prefetcher, and every on-disk campaign
store) depends on the flow producing *exactly* the keys the legacy
staged pipeline produced.  These tests spell the formulas out by hand —
hashing helpers only, no flow machinery — so an accidental change to
key derivation fails loudly instead of silently cold-missing every
existing store.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.arch import base_architecture, rsp_architecture
from repro.kernels import get_kernel
from repro.mapping.fingerprints import (
    architecture_fingerprint,
    dfg_fingerprint,
    stage_key,
)
from repro.mapping.pipeline import MappingPipeline
from repro.utils.serialization import content_hash


@pytest.fixture(scope="module")
def pipeline():
    return MappingPipeline(generate_contexts=True)


@pytest.fixture(scope="module")
def kernel():
    return get_kernel("MVM")


def test_dfg_key_is_the_content_fingerprint(pipeline, kernel):
    artifact = pipeline.dfg_artifact(kernel)
    assert artifact.key == dfg_fingerprint(artifact.value)
    assert artifact.key == content_hash(artifact.value.to_dict())


def test_upper_half_keys_match_the_legacy_formulas(pipeline, kernel):
    dfg_key = pipeline.dfg_artifact(kernel).key
    base_fp = architecture_fingerprint(pipeline.base)

    schedule = pipeline.base_schedule_artifact(kernel)
    assert schedule.key == stage_key("base_schedule", dfg=dfg_key, architecture=base_fp)

    profile = pipeline.profile_artifact(kernel)
    assert profile.key == stage_key("extract_profile", schedule=schedule.key, dfg=dfg_key)


def test_lower_half_keys_match_on_a_shared_target(pipeline, kernel):
    target = rsp_architecture(2)
    dfg_key = pipeline.dfg_artifact(kernel).key
    schedule_key = pipeline.base_schedule_artifact(kernel).key
    target_fp = architecture_fingerprint(target)

    rearranged = pipeline.rearrange_artifact(kernel, target)
    assert rearranged.key == stage_key(
        "rearrange", schedule=schedule_key, dfg=dfg_key, architecture=target_fp
    )

    context = pipeline.context_artifact(kernel, target)
    assert context.key == stage_key("generate_context", schedule=rearranged.key, dfg=dfg_key)


def test_base_target_passthrough_reuses_the_schedule_key(pipeline, kernel):
    """The passthrough branch is virtual: the 'rearranged' artifact of a
    base target carries the base-schedule key itself, so downstream keys
    (and stores written before the flow refactor) are unchanged."""
    schedule_key = pipeline.base_schedule_artifact(kernel).key
    result = pipeline.run(kernel, pipeline.base)
    assert result.schedule is not None

    ctx = pipeline.flow.run(
        context=pipeline._flow_context(kernel, pipeline.base),
        outputs=("rearranged", "context"),
        store=pipeline.store,
        stats=pipeline.stats,
    )
    assert ctx.key_of("rearranged") == schedule_key
    assert ctx.key_of("context") == stage_key(
        "generate_context",
        schedule=schedule_key,
        dfg=pipeline.dfg_artifact(kernel).key,
    )


def test_architecture_fingerprint_ignores_the_name():
    alias = replace(rsp_architecture(2), name="some-other-name")
    assert architecture_fingerprint(alias) == architecture_fingerprint(rsp_architecture(2))


def test_base_and_rsp_fingerprints_differ():
    assert architecture_fingerprint(base_architecture()) != architecture_fingerprint(
        rsp_architecture(2)
    )
