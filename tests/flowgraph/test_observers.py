"""The unified campaign-observer protocol and its flow-graph integration."""

from __future__ import annotations

import warnings

import pytest

from repro.flowgraph.core import Flow, FlowContext, Node, NodeEvent
from repro.observers import CampaignObserver, MultiObserver, compose_observers
from repro.trace.collect import TracingWaveObserver
from repro.trace.spans import Tracer


class Recorder(CampaignObserver):
    """Records every callback as (method, args) tuples."""

    def __init__(self, tag=""):
        self.tag = tag
        self.calls = []

    def wave_started(self, wave_index, job_count):
        self.calls.append(("wave_started", wave_index, job_count))

    def wave_finished(self, outcome):
        self.calls.append(("wave_finished", outcome))

    def base_evaluated(self, key, evaluation, source, feasible):
        self.calls.append(("base_evaluated", key, evaluation, source, feasible))

    def node_finished(self, event):
        self.calls.append(("node_finished", event))


class WaveOnly:
    """A legacy-shaped observer implementing only part of the protocol."""

    def __init__(self):
        self.waves = []

    def wave_started(self, wave_index, job_count):
        self.waves.append((wave_index, job_count))


def event(node="double", routed=False):
    return NodeEvent(
        flow="toy", node=node, output="out", key="k", hit=False, seconds=0.0, routed=routed
    )


# ----------------------------------------------------------------------
# Base protocol + composition
# ----------------------------------------------------------------------
def test_base_observer_is_a_no_op():
    observer = CampaignObserver()
    observer.wave_started(0, 3)
    observer.wave_finished(object())
    observer.base_evaluated("key", object(), "computed", True)
    observer.node_finished(event())


def test_multi_observer_fans_out_in_order():
    first, second = Recorder("a"), Recorder("b")
    multi = MultiObserver([first, second])
    multi.wave_started(1, 4)
    multi.base_evaluated("key", "eval", "cache", False)
    multi.node_finished(event())
    assert first.calls == second.calls
    assert [name for name, *_ in first.calls] == [
        "wave_started",
        "base_evaluated",
        "node_finished",
    ]


def test_multi_observer_skips_callbacks_members_lack():
    partial = WaveOnly()
    full = Recorder()
    multi = MultiObserver([partial, full])
    multi.wave_started(2, 8)
    multi.node_finished(event())  # must not raise on the partial member
    assert partial.waves == [(2, 8)]
    assert [name for name, *_ in full.calls] == ["wave_started", "node_finished"]


def test_compose_observers_collapses():
    assert compose_observers() is None
    assert compose_observers(None, None) is None
    single = Recorder()
    assert compose_observers(None, single, None) is single
    multi = compose_observers(single, Recorder())
    assert isinstance(multi, MultiObserver)
    assert len(multi.observers) == 2


# ----------------------------------------------------------------------
# Flow runtime emission
# ----------------------------------------------------------------------
def test_flow_run_emits_node_events_to_a_composed_observer():
    flow = Flow(
        [
            Node("double", lambda ctx: ctx["x"] * 2, inputs=("x",), output="doubled"),
            Node("square", lambda ctx: ctx["doubled"] ** 2, inputs=("doubled",), output="squared"),
        ],
        "double >> square",
        name="toy",
        inputs=("x",),
    )
    recorder = Recorder()
    observer = compose_observers(None, recorder)
    flow.run(context=FlowContext({"x": 3}, keys={"x": "3"}), observer=observer)
    events = [args[0] for name, *args in recorder.calls if name == "node_finished"]
    assert [e.node for e in events] == ["double", "square"]
    assert all(e.flow == "toy" and not e.hit for e in events)


# ----------------------------------------------------------------------
# TracingWaveObserver: routing counters
# ----------------------------------------------------------------------
def test_tracing_observer_counts_routed_nodes_only():
    tracer = Tracer()
    observer = TracingWaveObserver(tracer, suite="paper")
    observer.node_finished(event(node="rearrange", routed=True))
    observer.node_finished(event(node="rearrange", routed=True))
    observer.node_finished(event(node="base_schedule", routed=False))
    batch = tracer.drain()
    assert batch.counters == {"flow.routed.rearrange": 2.0}


def test_tracing_observer_speaks_the_unified_protocol():
    assert isinstance(TracingWaveObserver(Tracer(), suite="s"), CampaignObserver)


# ----------------------------------------------------------------------
# Deprecation shims for the moved names
# ----------------------------------------------------------------------
def test_trace_collect_shims_warn_and_delegate():
    import repro.trace.collect as collect

    with pytest.warns(DeprecationWarning, match="repro.observers.MultiObserver"):
        assert collect.MultiWaveObserver is MultiObserver
    with pytest.warns(DeprecationWarning, match="repro.observers.compose_observers"):
        assert collect.compose_observers is compose_observers
    with pytest.raises(AttributeError):
        collect.never_existed


def test_mapping_pipeline_stats_shims_warn_and_delegate():
    import repro.flowgraph.stats as flowstats
    import repro.mapping.pipeline as pipeline

    with pytest.warns(DeprecationWarning, match="moved to repro.flowgraph.stats"):
        assert pipeline.PipelineStats is flowstats.PipelineStats
    with pytest.warns(DeprecationWarning):
        assert pipeline.stage_timings_as_dict is flowstats.stage_timings_as_dict
    with pytest.raises(AttributeError):
        pipeline.never_existed


def test_executor_wave_observer_is_the_unified_base():
    from repro.engine.executor import WaveObserver

    assert issubclass(WaveObserver, CampaignObserver)
    # The subclass adds no behaviour of its own: one protocol, one base.
    assert WaveObserver().wave_started.__func__ is CampaignObserver.wave_started
