"""Edge-expression DSL: parsing, flattening, canonical rendering, errors."""

from __future__ import annotations

import pytest

from repro.errors import FlowParseError
from repro.flowgraph.dsl import (
    Alt,
    Chain,
    Ref,
    parse_edges,
    parse_expression,
    render_edges,
    render_expression,
)


# ----------------------------------------------------------------------
# Parsing + flattening
# ----------------------------------------------------------------------
def test_plain_chain_declares_edges_in_order():
    graph = parse_edges("a >> b >> c")
    assert graph.nodes == ["a", "b", "c"]
    assert graph.edges == [("a", "b"), ("b", "c")]
    assert graph.groups == []


def test_alternative_group_fans_out_and_joins():
    graph = parse_edges("a >> (b | c) >> d")
    assert graph.edges == [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]
    assert graph.groups == [("b", "c")]


def test_branch_may_be_a_chain():
    graph = parse_edges("a >> (b >> c | d) >> e")
    assert graph.edges == [
        ("b", "c"),
        ("a", "b"),
        ("a", "d"),
        ("c", "e"),
        ("d", "e"),
    ]
    # The group records each branch's *entry* node.
    assert graph.groups == [("b", "d")]


def test_multiple_expressions_merge_without_duplicate_edges():
    graph = parse_edges(
        [
            "build_dfg >> base_schedule >> extract_profile",
            "base_schedule >> (rearrange | passthrough) >> generate_context",
        ]
    )
    assert graph.nodes == [
        "build_dfg",
        "base_schedule",
        "extract_profile",
        "rearrange",
        "passthrough",
        "generate_context",
    ]
    assert ("base_schedule", "rearrange") in graph.edges
    assert ("base_schedule", "passthrough") in graph.edges
    assert graph.groups == [("rearrange", "passthrough")]
    assert len(graph.edges) == len(set(graph.edges))


def test_single_name_expression():
    graph = parse_edges("solo")
    assert graph.nodes == ["solo"]
    assert graph.edges == []


# ----------------------------------------------------------------------
# Canonical rendering
# ----------------------------------------------------------------------
def test_render_is_canonical_and_round_trip_stable():
    messy = "a>>  ( b|c )>>d"
    graph = parse_edges(messy)
    assert graph.expressions == ["a >> (b | c) >> d"]
    assert render_edges(parse_edges(render_edges(graph))) == render_edges(graph)


def test_redundant_parentheses_collapse():
    assert render_expression(parse_expression("(a) >> b")) == "a >> b"
    assert render_expression(parse_expression("((a | b))")) == "(a | b)"


def test_nested_chain_branch_renders_with_parentheses():
    text = "a >> (b >> c | d) >> e"
    rendered = render_expression(parse_expression(text))
    assert rendered == text
    assert parse_expression(rendered) == parse_expression(text)


def test_ast_shapes():
    assert parse_expression("x") == Ref("x")
    assert parse_expression("x >> y") == Chain((Ref("x"), Ref("y")))
    assert parse_expression("(x | y)") == Alt((Ref("x"), Ref("y")))


# ----------------------------------------------------------------------
# Errors
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "text, fragment",
    [
        ("", "empty edge expression"),
        ("a >> >> b", "expected a node name"),
        ("a >> (b | ) >> c", "expected a node name"),
        ("a >> (b | c", "expected ')'"),
        ("a | b) >> c", "trailing tokens"),
        ("a @ b", "unexpected character"),
        ("a b", "trailing tokens"),
    ],
)
def test_parse_errors_name_the_problem(text, fragment):
    with pytest.raises(FlowParseError) as excinfo:
        parse_edges(text)
    assert fragment in str(excinfo.value)


def test_empty_expression_list_is_rejected():
    with pytest.raises(FlowParseError, match="at least one edge expression"):
        parse_edges([])
