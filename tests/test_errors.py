"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception) and obj is not Exception:
            assert issubclass(obj, errors.ReproError)


def test_specific_errors_are_catchable_as_base():
    with pytest.raises(errors.ReproError):
        raise errors.SchedulingError("boom")


def test_hierarchy_relationships():
    assert issubclass(errors.DFGValidationError, errors.DFGError)
    assert issubclass(errors.UnknownOperationError, errors.DFGError)
    assert issubclass(errors.UnknownKernelError, errors.KernelError)
    assert issubclass(errors.SchedulingError, errors.MappingError)
    assert issubclass(errors.PlacementError, errors.MappingError)
    assert issubclass(errors.ComponentError, errors.ArchitectureError)


def test_errors_carry_messages():
    error = errors.MappingError("kernel does not fit")
    assert "kernel does not fit" in str(error)
