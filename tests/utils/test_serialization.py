"""Tests for JSON serialisation helpers."""

from __future__ import annotations

import dataclasses
import enum
import json
from pathlib import Path

from repro.utils.serialization import dataclass_to_dict, from_json, to_json


class Colour(enum.Enum):
    RED = "red"
    BLUE = "blue"


@dataclasses.dataclass
class Inner:
    value: int
    colour: Colour


@dataclasses.dataclass
class Outer:
    name: str
    items: list
    inner: Inner
    path: Path


def make_outer() -> Outer:
    return Outer(name="x", items=[1, 2, (3, 4)], inner=Inner(5, Colour.RED), path=Path("/tmp/a"))


def test_dataclass_to_dict_recurses():
    payload = dataclass_to_dict(make_outer())
    assert payload["name"] == "x"
    assert payload["items"] == [1, 2, [3, 4]]
    assert payload["inner"] == {"value": 5, "colour": "RED"}
    assert payload["path"] == "/tmp/a"


def test_to_json_round_trips_through_json_module():
    text = to_json(make_outer())
    parsed = json.loads(text)
    assert parsed["inner"]["colour"] == "RED"


def test_from_json_inverse_of_to_json_for_plain_data():
    data = {"a": [1, 2, 3], "b": {"c": None}}
    assert from_json(to_json(data)) == data


def test_dataclass_to_dict_handles_sets():
    assert sorted(dataclass_to_dict({1, 2, 3})) == [1, 2, 3]


def test_dataclass_to_dict_passes_scalars_through():
    assert dataclass_to_dict(42) == 42
    assert dataclass_to_dict("text") == "text"
    assert dataclass_to_dict(None) is None


# ----------------------------------------------------------------------
# Round trips on full exploration outcomes (previously never exercised)
# ----------------------------------------------------------------------
def small_exploration_result():
    from repro.core.exploration import RSPDesignSpaceExplorer
    from repro.core.stalls import CriticalOpIssue, ScheduleProfile

    issues = tuple(
        CriticalOpIssue(cycle=cycle, row=index, col=index, iteration=index,
                        has_immediate_dependent=True)
        for cycle in range(2)
        for index in range(4)
    )
    profiles = {
        "k": ScheduleProfile(kernel="k", length=8, critical_issues=issues, rows=8, cols=8)
    }
    return RSPDesignSpaceExplorer(profiles).explore()


def test_exploration_result_round_trips_through_json():
    result = small_exploration_result()
    payload = from_json(to_json(result))
    assert payload == dataclass_to_dict(result)
    assert len(payload["evaluated"]) == len(result.evaluated)
    assert payload["base"]["architecture"]["name"] == "Base"
    selected = payload["selected"]
    assert selected["parameters"]["rows_shared"] == result.selected.parameters.rows_shared
    assert selected["area_slices"] == result.selected.area_slices
    # Stall estimates keep their per-kernel structure.
    assert set(payload["base"]["stall_estimates"]) == {"k"}
    assert (
        payload["base"]["stall_estimates"]["k"]["base_cycles"]
        == result.base.stall_estimates["k"].base_cycles
    )


def test_engine_run_stats_round_trip():
    from repro.engine.executor import EngineRunStats

    stats = EngineRunStats(backend="process", workers=4, chunk_size=8,
                           total_jobs=17, evaluated=12, cache_hits=5,
                           cache_misses=12, early_rejected=0, wall_seconds=0.25)
    payload = from_json(to_json(stats))
    assert payload == dataclass_to_dict(stats)
    assert payload["backend"] == "process"
    assert payload["cache_hits"] == 5


def test_campaign_report_round_trip():
    from repro.engine.runner import CampaignReport, SuiteReport

    suite = SuiteReport(
        suite="dsp", kernels=["MVM", "FFT"], num_candidates=17, num_feasible=16,
        num_pareto=3, num_early_rejected=2, selected="rsp(shr=0,shc=1,stages=2)",
        selected_kind="rsp", base_area_slices=64000.0, base_execution_time_ns=5000.0,
        selected_area_slices=40000.0, selected_execution_time_ns=4200.0,
        cache_hits=10, cache_misses=7, profile_seconds=0.5, explore_seconds=0.1,
    )
    report = CampaignReport(
        campaign="nightly", suites=[suite], backend="thread", workers=4,
        chunk_size=8, early_reject=True, cache_path="/tmp/cache/evals-abc.jsonl",
        total_jobs=18, cache_hits=10, cache_misses=7, early_rejected=2,
        wall_seconds=1.5,
    )
    payload = from_json(to_json(report))
    assert payload == dataclass_to_dict(report)
    assert payload["suites"][0]["kernels"] == ["MVM", "FFT"]
    assert payload["suites"][0]["selected"] == "rsp(shr=0,shc=1,stages=2)"
