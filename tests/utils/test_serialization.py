"""Tests for JSON serialisation helpers."""

from __future__ import annotations

import dataclasses
import enum
import json
from pathlib import Path

from repro.utils.serialization import dataclass_to_dict, from_json, to_json


class Colour(enum.Enum):
    RED = "red"
    BLUE = "blue"


@dataclasses.dataclass
class Inner:
    value: int
    colour: Colour


@dataclasses.dataclass
class Outer:
    name: str
    items: list
    inner: Inner
    path: Path


def make_outer() -> Outer:
    return Outer(name="x", items=[1, 2, (3, 4)], inner=Inner(5, Colour.RED), path=Path("/tmp/a"))


def test_dataclass_to_dict_recurses():
    payload = dataclass_to_dict(make_outer())
    assert payload["name"] == "x"
    assert payload["items"] == [1, 2, [3, 4]]
    assert payload["inner"] == {"value": 5, "colour": "RED"}
    assert payload["path"] == "/tmp/a"


def test_to_json_round_trips_through_json_module():
    text = to_json(make_outer())
    parsed = json.loads(text)
    assert parsed["inner"]["colour"] == "RED"


def test_from_json_inverse_of_to_json_for_plain_data():
    data = {"a": [1, 2, 3], "b": {"c": None}}
    assert from_json(to_json(data)) == data


def test_dataclass_to_dict_handles_sets():
    assert sorted(dataclass_to_dict({1, 2, 3})) == [1, 2, 3]


def test_dataclass_to_dict_passes_scalars_through():
    assert dataclass_to_dict(42) == 42
    assert dataclass_to_dict("text") == "text"
    assert dataclass_to_dict(None) is None
