"""Tests for the text-table formatting helpers."""

from __future__ import annotations

from repro.utils.tabulate import format_markdown_table, format_table


def test_format_table_aligns_columns():
    text = format_table(
        [["a", 1, 2.5], ["long-name", 10, 3.25]],
        headers=["name", "count", "value"],
    )
    lines = text.splitlines()
    assert lines[0].startswith("name")
    assert "---" in lines[1]
    assert len(lines) == 4
    # Columns align: "count" values start at the same offset.
    assert lines[2].index("1") == lines[3].index("10")


def test_format_table_handles_none_and_bools():
    text = format_table([[None, True, False]])
    assert "-" in text
    assert "yes" in text
    assert "no" in text


def test_format_table_float_format():
    text = format_table([[3.14159]], float_format=".1f")
    assert "3.1" in text
    assert "3.14" not in text


def test_format_table_title():
    text = format_table([[1]], title="My Table")
    assert text.splitlines()[0] == "My Table"


def test_format_table_empty_rows():
    assert format_table([]) == ""


def test_format_markdown_table_structure():
    text = format_markdown_table([[1, 2], [3, 4]], headers=["a", "b"])
    lines = text.splitlines()
    assert lines[0] == "| a | b |"
    assert set(lines[1]) <= {"|", "-", " "}
    assert lines[2] == "| 1 | 2 |"
    assert len(lines) == 4


def test_format_markdown_table_escapes_nothing_but_renders_none():
    text = format_markdown_table([[None]], headers=["x"])
    assert "| - |" in text
