"""Tests for the kernel-loop abstraction."""

from __future__ import annotations

import pytest

from repro.errors import KernelError
from repro.ir import DFGBuilder, Kernel, KernelCharacterisation, OpType


def mac_body(builder: DFGBuilder, iteration: int, state: dict) -> None:
    a = builder.load("x", iteration)
    b = builder.load("y", iteration)
    product = builder.mul(a, b)
    builder.store("z", iteration, product)


def make_kernel(iterations: int = 4) -> Kernel:
    return Kernel(name="mac", body=mac_body, iterations=iterations, description="test kernel")


def test_kernel_requires_positive_iterations():
    with pytest.raises(KernelError):
        Kernel(name="bad", body=mac_body, iterations=0)


def test_kernel_requires_callable_body():
    with pytest.raises(KernelError):
        Kernel(name="bad", body="not callable", iterations=1)  # type: ignore[arg-type]


def test_build_body_single_iteration():
    body = make_kernel().build_body()
    assert len(body) == 4
    assert body.iterations() == [0]


def test_build_unrolls_all_iterations():
    dfg = make_kernel(iterations=5).build()
    assert len(dfg) == 20
    assert dfg.iterations() == [0, 1, 2, 3, 4]


def test_build_with_override_count():
    dfg = make_kernel(iterations=5).build(iterations=2)
    assert len(dfg) == 8


def test_build_rejects_non_positive_override():
    with pytest.raises(KernelError):
        make_kernel().build(iterations=0)


def test_operation_set_excludes_memory():
    kernel = make_kernel()
    assert kernel.operation_set() == [OpType.MUL]
    assert kernel.operation_set_names() == ["mult"]


def test_total_operations():
    assert make_kernel(iterations=3).total_operations() == 12


def test_state_carries_values_between_iterations():
    def accumulating_body(builder: DFGBuilder, iteration: int, state: dict) -> None:
        value = builder.load("x", iteration)
        if "acc" in state:
            state["acc"] = builder.add(state["acc"], value)
        else:
            state["acc"] = value

    kernel = Kernel(name="acc", body=accumulating_body, iterations=4)
    dfg = kernel.build()
    assert len(dfg.operations_of_type(OpType.ADD)) == 3


def test_finalize_emits_epilogue():
    def finalize(builder: DFGBuilder, state: dict) -> None:
        builder.store("out", 0, state["acc"])

    def body(builder: DFGBuilder, iteration: int, state: dict) -> None:
        value = builder.load("x", iteration)
        state["acc"] = builder.add(state["acc"], value) if "acc" in state else value

    kernel = Kernel(name="acc", body=body, iterations=3, finalize=finalize)
    dfg = kernel.build()
    stores = dfg.operations_of_type(OpType.STORE)
    assert len(stores) == 1
    assert stores[0].array == "out"
    # The body-only build does not include the epilogue.
    assert len(kernel.build_body().operations_of_type(OpType.STORE)) == 0


def test_characterisation_from_kernel():
    characterisation = KernelCharacterisation.from_kernel(make_kernel(), max_multiplications_per_cycle=3)
    assert characterisation.name == "mac"
    assert characterisation.body_multiplications == 1
    assert characterisation.body_memory_operations == 3
    assert characterisation.operation_set == ["mult"]
    assert characterisation.max_multiplications_per_cycle == 3
