"""Tests for the DFG builder."""

from __future__ import annotations

import pytest

from repro.errors import DFGError
from repro.ir import DFGBuilder, OpType, validate_dfg


def test_load_mul_store_chain():
    builder = DFGBuilder("k")
    a = builder.load("x", 0)
    b = builder.load("y", 1)
    c = builder.mul(a, b)
    builder.store("z", 0, c)
    dfg = builder.build()
    assert len(dfg) == 4
    assert dfg.operation(c).optype is OpType.MUL
    validate_dfg(dfg)


def test_operand_ports_follow_argument_order():
    builder = DFGBuilder()
    a = builder.load("x", 0)
    b = builder.load("y", 0)
    diff = builder.sub(a, b)
    dfg = builder.build()
    assert dfg.graph.edges[a, diff]["port"] == 0
    assert dfg.graph.edges[b, diff]["port"] == 1


def test_iteration_tracking():
    builder = DFGBuilder()
    first = builder.load("x", 0)
    builder.next_iteration()
    second = builder.load("x", 1)
    dfg = builder.build()
    assert dfg.operation(first).iteration == 0
    assert dfg.operation(second).iteration == 1


def test_set_iteration_rejects_negative():
    builder = DFGBuilder()
    with pytest.raises(DFGError):
        builder.set_iteration(-1)


def test_const_and_shift_have_immediates():
    builder = DFGBuilder()
    c = builder.const(7)
    a = builder.load("x", 0)
    s = builder.shift(a, -2)
    dfg = builder.build()
    assert dfg.operation(c).immediate == 7
    assert dfg.operation(s).immediate == -2


def test_duplicate_operand_routed_through_mov():
    builder = DFGBuilder()
    a = builder.load("x", 0)
    square = builder.mul(a, a)
    dfg = builder.build()
    preds = dfg.predecessors(square)
    assert len(preds) == 2
    mov_ops = dfg.operations_of_type(OpType.MOV)
    assert len(mov_ops) == 1
    validate_dfg(dfg)


def test_sum_tree_balanced_depth():
    builder = DFGBuilder()
    leaves = [builder.load("x", i) for i in range(8)]
    root = builder.sum_tree(leaves)
    dfg = builder.build()
    adds = dfg.operations_of_type(OpType.ADD)
    assert len(adds) == 7
    # Balanced reduction of 8 leaves: load + 3 add levels.
    assert dfg.depth() == 4
    assert dfg.successors(root) == []


def test_sum_tree_odd_count():
    builder = DFGBuilder()
    leaves = [builder.load("x", i) for i in range(5)]
    builder.sum_tree(leaves)
    dfg = builder.build()
    assert len(dfg.operations_of_type(OpType.ADD)) == 4


def test_sum_tree_single_value_passthrough():
    builder = DFGBuilder()
    leaf = builder.load("x", 0)
    assert builder.sum_tree([leaf]) == leaf


def test_sum_tree_empty_rejected():
    builder = DFGBuilder()
    with pytest.raises(DFGError):
        builder.sum_tree([])


def test_accumulate_chain_serial_depth():
    builder = DFGBuilder()
    leaves = [builder.load("x", i) for i in range(6)]
    builder.accumulate_chain(leaves)
    dfg = builder.build()
    assert len(dfg.operations_of_type(OpType.ADD)) == 5
    assert dfg.depth() == 6


def test_binary_generic_op():
    builder = DFGBuilder()
    a = builder.load("x", 0)
    b = builder.load("y", 0)
    result = builder.binary(OpType.XOR, a, b)
    assert builder.dfg.operation(result).optype is OpType.XOR


def test_min_max_abs_mov():
    builder = DFGBuilder()
    a = builder.load("x", 0)
    b = builder.load("y", 0)
    builder.minimum(a, b)
    builder.maximum(a, b)
    builder.abs(a)
    builder.mov(b)
    dfg = builder.build()
    counts = dfg.op_counts()
    assert counts[OpType.MIN] == 1
    assert counts[OpType.MAX] == 1
    assert counts[OpType.ABS] == 1
    assert counts[OpType.MOV] == 1
