"""Tests for DFG validation."""

from __future__ import annotations

import pytest

from repro.errors import DFGValidationError
from repro.ir import DFG, DFGBuilder, Operation, OpType
from repro.ir.validate import collect_dfg_problems, is_valid_dfg, validate_dfg


def valid_dfg() -> DFG:
    builder = DFGBuilder()
    a = builder.load("x", 0)
    b = builder.load("y", 0)
    c = builder.mul(a, b)
    builder.store("z", 0, c)
    return builder.build()


def test_valid_graph_passes():
    dfg = valid_dfg()
    assert collect_dfg_problems(dfg) == []
    assert is_valid_dfg(dfg)
    validate_dfg(dfg)


def test_wrong_operand_count_detected():
    dfg = DFG()
    dfg.add_operation(Operation("a", OpType.LOAD, array="x"))
    dfg.add_operation(Operation("m", OpType.MUL))
    dfg.add_dependence("a", "m")
    problems = collect_dfg_problems(dfg)
    assert any("expects 2 operand" in problem for problem in problems)
    assert not is_valid_dfg(dfg)


def test_memory_op_without_array_detected():
    dfg = DFG()
    dfg.add_operation(Operation("a", OpType.LOAD))
    assert any("does not name the accessed array" in p for p in collect_dfg_problems(dfg))


def test_const_without_immediate_detected():
    dfg = DFG()
    dfg.add_operation(Operation("c", OpType.CONST))
    assert any("no immediate" in p for p in collect_dfg_problems(dfg))


def test_shift_without_amount_detected():
    dfg = DFG()
    dfg.add_operation(Operation("a", OpType.LOAD, array="x"))
    dfg.add_operation(Operation("s", OpType.SHIFT))
    dfg.add_dependence("a", "s")
    assert any("no shift amount" in p for p in collect_dfg_problems(dfg))


def test_store_with_consumer_detected():
    dfg = DFG()
    dfg.add_operation(Operation("a", OpType.LOAD, array="x"))
    dfg.add_operation(Operation("st", OpType.STORE, array="z"))
    dfg.add_operation(Operation("b", OpType.MOV))
    dfg.add_dependence("a", "st")
    dfg.add_dependence("st", "b")
    assert any("must not feed value consumers" in p for p in collect_dfg_problems(dfg))


def test_cycle_detected():
    dfg = DFG()
    dfg.add_operation(Operation("a", OpType.MOV))
    dfg.add_operation(Operation("b", OpType.MOV))
    dfg.add_dependence("a", "b")
    dfg.add_dependence("b", "a")
    assert any("cycle" in p for p in collect_dfg_problems(dfg))


def test_validate_raises_with_all_problems():
    dfg = DFG()
    dfg.add_operation(Operation("c", OpType.CONST))
    dfg.add_operation(Operation("l", OpType.LOAD))
    with pytest.raises(DFGValidationError) as excinfo:
        validate_dfg(dfg)
    message = str(excinfo.value)
    assert "no immediate" in message
    assert "does not name" in message


def test_all_paper_kernels_are_valid():
    from repro.kernels import paper_suite

    for kernel in paper_suite():
        validate_dfg(kernel.build_body())
