"""Property-based tests on the dataflow-graph IR (Hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import DFG, DFGBuilder, OpType


@st.composite
def random_layered_dfg(draw):
    """A random acyclic DFG built layer by layer with the builder.

    Layer 0 consists of loads; every later operation consumes two values
    from strictly earlier layers, so the graph is acyclic by construction.
    """
    builder = DFGBuilder("random")
    num_loads = draw(st.integers(min_value=2, max_value=8))
    values = [builder.load("x", index) for index in range(num_loads)]
    num_ops = draw(st.integers(min_value=1, max_value=25))
    optypes = [OpType.ADD, OpType.SUB, OpType.MUL, OpType.MIN, OpType.MAX]
    for index in range(num_ops):
        left = draw(st.sampled_from(values))
        right = draw(st.sampled_from(values))
        optype = draw(st.sampled_from(optypes))
        values.append(builder.binary(optype, left, right))
        if draw(st.booleans()):
            builder.next_iteration()
    return builder.build()


@given(random_layered_dfg())
@settings(max_examples=40, deadline=None)
def test_builder_graphs_are_acyclic(dfg: DFG):
    assert dfg.is_acyclic()


@given(random_layered_dfg())
@settings(max_examples=40, deadline=None)
def test_topological_order_contains_every_operation_once(dfg: DFG):
    order = dfg.topological_order()
    assert len(order) == len(dfg)
    assert len(set(order)) == len(order)
    positions = {name: index for index, name in enumerate(order)}
    for producer, consumer in dfg.edges():
        assert positions[producer] < positions[consumer]


@given(random_layered_dfg())
@settings(max_examples=40, deadline=None)
def test_depth_bounded_by_operation_count_and_positive(dfg: DFG):
    depth = dfg.depth()
    assert 1 <= depth <= len(dfg)
    # Critical path length equals the unit-latency depth.
    assert len(dfg.critical_path()) == depth


@given(random_layered_dfg())
@settings(max_examples=40, deadline=None)
def test_serialisation_round_trip_preserves_structure(dfg: DFG):
    rebuilt = DFG.from_dict(dfg.to_dict())
    assert len(rebuilt) == len(dfg)
    assert sorted(rebuilt.edges()) == sorted(dfg.edges())
    assert rebuilt.op_counts() == dfg.op_counts()


@given(random_layered_dfg())
@settings(max_examples=40, deadline=None)
def test_op_counts_sum_to_total(dfg: DFG):
    assert sum(dfg.op_counts().values()) == len(dfg)


@given(random_layered_dfg(), random_layered_dfg())
@settings(max_examples=20, deadline=None)
def test_merge_adds_exactly_the_other_graph(dfg: DFG, other: DFG):
    before_nodes, before_edges = len(dfg), dfg.number_of_edges()
    dfg.merge(other)
    assert len(dfg) == before_nodes + len(other)
    assert dfg.number_of_edges() == before_edges + other.number_of_edges()
    assert dfg.is_acyclic()
