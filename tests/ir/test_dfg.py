"""Tests for the dataflow-graph IR."""

from __future__ import annotations

import pytest

from repro.errors import DFGError, DFGValidationError, UnknownOperationError
from repro.ir import DFG, Operation, OpType


def simple_mac_dfg() -> DFG:
    """load a, load b, c = a*b, d = c+c2(const), store d."""
    dfg = DFG("mac")
    dfg.add_operation(Operation("a", OpType.LOAD, array="x", index=0))
    dfg.add_operation(Operation("b", OpType.LOAD, array="y", index=0))
    dfg.add_operation(Operation("c", OpType.MUL))
    dfg.add_operation(Operation("k", OpType.CONST, immediate=3))
    dfg.add_operation(Operation("d", OpType.ADD))
    dfg.add_operation(Operation("s", OpType.STORE, array="z", index=0))
    dfg.add_dependence("a", "c", port=0)
    dfg.add_dependence("b", "c", port=1)
    dfg.add_dependence("c", "d", port=0)
    dfg.add_dependence("k", "d", port=1)
    dfg.add_dependence("d", "s", port=0)
    return dfg


class TestOpType:
    def test_memory_classification(self):
        assert OpType.LOAD.is_memory
        assert OpType.STORE.is_memory
        assert not OpType.ADD.is_memory

    def test_multiplication_classification(self):
        assert OpType.MUL.is_multiplication
        assert not OpType.ADD.is_multiplication

    def test_alu_classification(self):
        for optype in (OpType.ADD, OpType.SUB, OpType.ABS, OpType.MIN, OpType.MAX):
            assert optype.is_alu
        assert not OpType.MUL.is_alu
        assert not OpType.SHIFT.is_alu

    def test_shift_classification(self):
        assert OpType.SHIFT.is_shift

    def test_store_produces_no_value(self):
        assert not OpType.STORE.produces_value
        assert OpType.LOAD.produces_value


class TestOperation:
    def test_rejects_empty_name(self):
        with pytest.raises(DFGError):
            Operation("", OpType.ADD)

    def test_rejects_negative_iteration(self):
        with pytest.raises(DFGError):
            Operation("a", OpType.ADD, iteration=-1)

    def test_rejects_non_optype(self):
        with pytest.raises(DFGError):
            Operation("a", "add")  # type: ignore[arg-type]

    def test_labels(self):
        assert Operation("a", OpType.LOAD).label() == "Ld"
        assert Operation("a", OpType.STORE).label() == "St"
        assert Operation("a", OpType.MUL).label() == "*"
        assert Operation("a", OpType.ADD).label() == "+"
        assert Operation("a", OpType.SUB).label() == "-"


class TestDFGConstruction:
    def test_add_and_query(self):
        dfg = simple_mac_dfg()
        assert len(dfg) == 6
        assert dfg.number_of_edges() == 5
        assert "c" in dfg
        assert dfg.operation("c").optype is OpType.MUL

    def test_duplicate_name_rejected(self):
        dfg = DFG()
        dfg.add_operation(Operation("a", OpType.LOAD, array="x"))
        with pytest.raises(DFGError):
            dfg.add_operation(Operation("a", OpType.ADD))

    def test_edge_to_unknown_operation_rejected(self):
        dfg = DFG()
        dfg.add_operation(Operation("a", OpType.LOAD, array="x"))
        with pytest.raises(UnknownOperationError):
            dfg.add_dependence("a", "missing")

    def test_self_edge_rejected(self):
        dfg = DFG()
        dfg.add_operation(Operation("a", OpType.ADD))
        with pytest.raises(DFGError):
            dfg.add_dependence("a", "a")

    def test_unknown_operation_lookup(self):
        dfg = DFG()
        with pytest.raises(UnknownOperationError):
            dfg.operation("ghost")

    def test_fresh_name_unique(self):
        dfg = DFG()
        names = {dfg.fresh_name("op") for _ in range(50)}
        assert len(names) == 50


class TestDFGQueries:
    def test_predecessors_and_successors(self):
        dfg = simple_mac_dfg()
        assert set(dfg.predecessors("c")) == {"a", "b"}
        assert dfg.successors("c") == ["d"]
        assert dfg.successors("s") == []

    def test_topological_order_respects_edges(self):
        dfg = simple_mac_dfg()
        order = dfg.topological_order()
        assert order.index("a") < order.index("c") < order.index("d") < order.index("s")

    def test_cycle_detection(self):
        dfg = DFG()
        dfg.add_operation(Operation("a", OpType.ADD))
        dfg.add_operation(Operation("b", OpType.ADD))
        dfg.add_dependence("a", "b")
        dfg.add_dependence("b", "a")
        assert not dfg.is_acyclic()
        with pytest.raises(DFGValidationError):
            dfg.topological_order()

    def test_op_counts_and_operation_set(self):
        dfg = simple_mac_dfg()
        counts = dfg.op_counts()
        assert counts[OpType.LOAD] == 2
        assert counts[OpType.MUL] == 1
        # Operation set excludes memory operations and constants.
        assert dfg.operation_set() == [OpType.ADD, OpType.MUL]

    def test_multiplication_and_memory_counts(self):
        dfg = simple_mac_dfg()
        assert dfg.multiplication_count() == 1
        assert dfg.memory_operation_count() == 3

    def test_iterations_listing(self):
        dfg = DFG()
        dfg.add_operation(Operation("a", OpType.ADD, iteration=2))
        dfg.add_operation(Operation("b", OpType.ADD, iteration=0))
        assert dfg.iterations() == [0, 2]
        assert [op.name for op in dfg.operations_in_iteration(2)] == ["a"]


class TestDFGAnalysis:
    def test_depth_default_latency(self):
        dfg = simple_mac_dfg()
        # a/b -> c -> d -> s is four operations deep.
        assert dfg.depth() == 4

    def test_depth_custom_latency(self):
        dfg = simple_mac_dfg()
        depth = dfg.depth(lambda op: 2 if op.optype is OpType.MUL else 1)
        assert depth == 5

    def test_critical_path_endpoints(self):
        dfg = simple_mac_dfg()
        path = dfg.critical_path()
        assert path[-1] == "s"
        assert path[0] in ("a", "b")
        assert len(path) == 4

    def test_empty_dfg_depth_zero(self):
        assert DFG().depth() == 0
        assert DFG().critical_path() == []


class TestDFGSerialisation:
    def test_round_trip(self):
        dfg = simple_mac_dfg()
        rebuilt = DFG.from_dict(dfg.to_dict())
        assert len(rebuilt) == len(dfg)
        assert rebuilt.number_of_edges() == dfg.number_of_edges()
        assert rebuilt.operation("k").immediate == 3
        assert rebuilt.graph.edges["a", "c"]["port"] == 0

    def test_copy_is_independent(self):
        dfg = simple_mac_dfg()
        clone = dfg.copy()
        clone.add_operation(Operation("extra", OpType.ADD))
        assert "extra" not in dfg

    def test_merge_renames_on_collision(self):
        dfg = simple_mac_dfg()
        other = simple_mac_dfg()
        renaming = dfg.merge(other)
        assert len(dfg) == 12
        assert all(new_name in dfg for new_name in renaming.values())
