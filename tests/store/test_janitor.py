"""Tests for age-based GC and compaction sweeps."""

from __future__ import annotations

import json

import pytest

from repro.store import ShardedJsonlBackend, StoreJanitor

from test_backends import BACKEND_KINDS, FakeClock, hex_key, make_backend


def test_rejects_negative_max_age(tmp_path):
    backend = make_backend("memory", tmp_path)
    with pytest.raises(ValueError):
        StoreJanitor(backend, max_age_seconds=-1.0)


@pytest.mark.parametrize("kind", BACKEND_KINDS)
class TestSweep:
    def test_no_max_age_only_compacts(self, kind, tmp_path):
        backend = make_backend(kind, tmp_path, num_shards=2)
        for index in range(6):
            backend.put("ns", hex_key(index), {"v": index})
        report = StoreJanitor(backend).sweep()
        assert report.scanned == 6
        assert report.evicted == 0
        assert report.kept == 6

    def test_evicts_entries_older_than_max_age(self, kind, tmp_path):
        clock = FakeClock()
        backend = make_backend(kind, tmp_path, clock=clock)
        backend.put("ns", hex_key(1), {"v": 1})
        clock.advance(1000.0)
        backend.put("ns", hex_key(2), {"v": 2})
        report = StoreJanitor(backend, max_age_seconds=500.0).sweep()
        assert report.evicted == 1
        assert not backend.contains("ns", hex_key(1))
        assert backend.contains("ns", hex_key(2))

    def test_never_evicts_a_key_that_was_just_read(self, kind, tmp_path):
        clock = FakeClock()
        backend = make_backend(kind, tmp_path, clock=clock)
        for index in range(8):
            backend.put("ns", hex_key(index), {"v": index})
        clock.advance(1000.0)
        read_keys = [hex_key(index) for index in range(0, 8, 2)]
        for key in read_keys:
            assert backend.get("ns", key)[0]

        report = StoreJanitor(backend, max_age_seconds=500.0).sweep()
        assert report.evicted == 4
        for key in read_keys:
            assert backend.contains("ns", key), "a just-read key must survive GC"
        for index in range(1, 8, 2):
            assert not backend.contains("ns", hex_key(index))

    def test_sweep_without_compaction(self, kind, tmp_path):
        backend = make_backend(kind, tmp_path)
        backend.put("ns", hex_key(1), {"v": 1})
        report = StoreJanitor(backend).sweep(compact=False)
        assert report.compaction.shards_rewritten == 0
        assert report.compaction.entries_kept == 0


def test_jsonl_eviction_is_durable_even_without_compact(tmp_path):
    """GC deletions must not resurrect on the next open (tombstone flush)."""
    import time as time_module

    path = tmp_path / "records.jsonl"
    backend = ShardedJsonlBackend(path, num_shards=2)
    for index in range(5):
        backend.put("", hex_key(index), {"v": index})

    future = ShardedJsonlBackend(
        path, num_shards=2, clock=lambda: time_module.time() + 1000.0
    )
    report = StoreJanitor(future, max_age_seconds=500.0).sweep(compact=False)
    assert report.evicted == 5
    assert len(ShardedJsonlBackend(path, num_shards=2)) == 0


# ----------------------------------------------------------------------
# Disk effects specific to the persistent backends
# ----------------------------------------------------------------------
def test_jsonl_eviction_shrinks_the_shard_files(tmp_path):
    clock = FakeClock()
    path = tmp_path / "records.jsonl"
    backend = ShardedJsonlBackend(path, num_shards=2, clock=clock)
    for index in range(20):
        backend.put("", hex_key(index), {"v": "x" * 50})
    clock.advance(1000.0)
    bytes_before = sum(backend.shard_path(i).stat().st_size for i in range(2))

    report = StoreJanitor(backend, max_age_seconds=500.0).sweep()
    assert report.evicted == 20
    assert report.compaction.shards_rewritten == 2
    bytes_after = sum(backend.shard_path(i).stat().st_size for i in range(2))
    assert bytes_after < bytes_before
    assert len(ShardedJsonlBackend(path, num_shards=2)) == 0


def test_jsonl_sweep_drops_corrupt_lines_from_disk(tmp_path):
    path = tmp_path / "records.jsonl"
    backend = ShardedJsonlBackend(path)
    backend.put("", hex_key(1), {"v": 1})
    with path.open("a", encoding="utf-8") as handle:
        handle.write("{torn line\n")
        handle.write(json.dumps({"key": hex_key(1), "v": 1}) + "\n")

    report = StoreJanitor(ShardedJsonlBackend(path)).sweep()
    assert report.compaction.dropped_corrupt == 1
    assert report.compaction.dropped_duplicates == 1
    text = path.read_text(encoding="utf-8")
    assert len(text.splitlines()) == 1
    assert ShardedJsonlBackend(path).corrupt_lines == 0


def test_pickledir_eviction_removes_files(tmp_path):
    clock = FakeClock()
    backend = make_backend("pickle", tmp_path, clock=clock, num_shards=2)
    for index in range(10):
        backend.put("stage", hex_key(index), index)
    clock.advance(1000.0)
    for index in range(5):
        backend.get("stage", hex_key(index))

    report = StoreJanitor(backend, max_age_seconds=500.0).sweep()
    assert report.evicted == 5
    remaining = list((tmp_path / "pickles").rglob("*.pkl"))
    assert len(remaining) == 5
