"""Multiprocess stress battery: concurrent writers on one store directory.

Several OS processes hammer the same store concurrently (each opening its
own backend, exactly like independent campaign runs sharing a cache
directory).  The store contract under that load:

* zero lost records — every record any writer stored is readable by a
  fresh open afterwards,
* zero corrupt lines/files — the lock-protected append and
  write-then-rename protocols never tear a record,
* byte-stable reads after a final compaction — compacting an unchanged
  store twice produces identical bytes.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import pickle

import pytest

from repro.store import PickleDirBackend, ShardedJsonlBackend

WRITERS = 4
RECORDS_PER_WRITER = 120
SHARDS = 4

# ``fork`` keeps the worker functions picklable-free and is the platform
# this battery targets (the advisory locks are POSIX fcntl locks anyway).
mp = multiprocessing.get_context("fork")

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable",
)


def writer_key(writer: int, index: int) -> str:
    return hashlib.sha256(f"writer-{writer}-record-{index}".encode()).hexdigest()


def all_keys():
    return [
        writer_key(writer, index)
        for writer in range(WRITERS)
        for index in range(RECORDS_PER_WRITER)
    ]


def jsonl_writer(path, writer: int) -> None:
    backend = ShardedJsonlBackend(path, num_shards=SHARDS)
    for index in range(RECORDS_PER_WRITER):
        backend.put("", writer_key(writer, index), {"writer": writer, "index": index})


def pickle_writer(root, writer: int) -> None:
    backend = PickleDirBackend(root, num_shards=SHARDS)
    for index in range(RECORDS_PER_WRITER):
        # Writers deliberately collide on every key so the rename race is
        # exercised; values agree because keys are content hashes.
        backend.put("stage", writer_key(0, index), {"index": index})
        backend.put(f"stage-{writer}", writer_key(writer, index), {"index": index})


def run_writers(target, argument) -> None:
    processes = [
        mp.Process(target=target, args=(argument, writer)) for writer in range(WRITERS)
    ]
    for process in processes:
        process.start()
    for process in processes:
        process.join(timeout=120)
        assert process.exitcode == 0


def shard_digest(path) -> str:
    digest = hashlib.sha256()
    for shard_file in sorted(path.parent.glob(f"{path.stem}*{path.suffix}")):
        digest.update(shard_file.name.encode())
        digest.update(shard_file.read_bytes())
    return digest.hexdigest()


def test_concurrent_jsonl_writers_lose_nothing(tmp_path):
    path = tmp_path / "records.jsonl"
    run_writers(jsonl_writer, path)

    merged = ShardedJsonlBackend(path, num_shards=SHARDS)
    assert merged.corrupt_lines == 0, "concurrent appends must never tear a line"
    keys = all_keys()
    assert len(merged) == len(keys)
    for key in keys:
        hit, record = merged.get("", key)
        assert hit
        assert writer_key(record["writer"], record["index"]) == key

    # Final compaction: nothing lost, nothing corrupt, bytes stable.
    report = merged.compact()
    assert report.entries_kept == len(keys)
    assert report.dropped_corrupt == 0

    compacted = ShardedJsonlBackend(path, num_shards=SHARDS)
    assert compacted.corrupt_lines == 0
    assert len(compacted) == len(keys)
    first_digest = shard_digest(path)
    compacted.compact()
    assert shard_digest(path) == first_digest, "re-compaction must be byte-stable"


def test_concurrent_pickle_writers_lose_nothing(tmp_path):
    root = tmp_path / "artifacts"
    run_writers(pickle_writer, root)

    merged = PickleDirBackend(root, num_shards=SHARDS)
    for writer in range(WRITERS):
        for index in range(RECORDS_PER_WRITER):
            hit, value = merged.get(f"stage-{writer}", writer_key(writer, index))
            assert hit and value == {"index": index}
    for index in range(RECORDS_PER_WRITER):
        hit, value = merged.get("stage", writer_key(0, index))
        assert hit and value == {"index": index}
    assert merged.counters.corrupt == 0, "write-then-rename must never tear a file"

    report = merged.compact()
    assert report.dropped_corrupt == 0
    # Every pickle on disk is loadable and the file census is stable
    # across a second compaction.
    census = sorted(str(path.relative_to(root)) for path in root.rglob("*.pkl"))
    assert len(census) == WRITERS * RECORDS_PER_WRITER + RECORDS_PER_WRITER
    for pkl in root.rglob("*.pkl"):
        with pkl.open("rb") as handle:
            pickle.load(handle)
    merged.compact()
    assert census == sorted(str(path.relative_to(root)) for path in root.rglob("*.pkl"))


def test_concurrent_writers_then_gc_keeps_recently_read_entries(tmp_path):
    import time

    from repro.store import StoreJanitor

    path = tmp_path / "records.jsonl"
    run_writers(jsonl_writer, path)

    # Open the store "1000 seconds in the future": every writer record is
    # now over-age, then reads refresh exactly one writer's keys.
    backend = ShardedJsonlBackend(
        path, num_shards=SHARDS, clock=lambda: time.time() + 1000.0
    )
    kept_keys = [writer_key(0, index) for index in range(RECORDS_PER_WRITER)]
    for key in kept_keys:
        assert backend.get("", key)[0]

    report = StoreJanitor(backend, max_age_seconds=500.0).sweep()
    assert report.evicted == (WRITERS - 1) * RECORDS_PER_WRITER
    for key in kept_keys:
        assert backend.contains("", key), "a just-read key must survive GC"
    survivors = ShardedJsonlBackend(path, num_shards=SHARDS)
    assert len(survivors) == RECORDS_PER_WRITER
