"""Unit tests for the unified storage backends."""

from __future__ import annotations

import hashlib
import json
import time

import pytest

from repro.store import (
    MemoryBackend,
    PickleDirBackend,
    ShardedJsonlBackend,
    shard_index,
)


class FakeClock:
    """An injectable time source tests advance explicitly."""

    def __init__(self, now: float = None) -> None:
        self.now = time.time() if now is None else now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def hex_key(index: int) -> str:
    # A real content hash: distinct keys must differ within the first 32
    # characters, which is all the pickle backend keeps for file names.
    return hashlib.sha256(str(index).encode()).hexdigest()


def make_backend(kind: str, tmp_path, clock=None, num_shards: int = 1):
    clock = clock or time.time
    if kind == "memory":
        return MemoryBackend(clock=clock)
    if kind == "jsonl":
        return ShardedJsonlBackend(tmp_path / "records.jsonl", num_shards=num_shards, clock=clock)
    return PickleDirBackend(tmp_path / "pickles", num_shards=num_shards, clock=clock)


BACKEND_KINDS = ("memory", "jsonl", "pickle")


# ----------------------------------------------------------------------
# Protocol behaviour shared by every backend
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", BACKEND_KINDS)
class TestProtocol:
    def test_round_trip_and_counters(self, kind, tmp_path):
        backend = make_backend(kind, tmp_path)
        key = hex_key(1)
        hit, value = backend.get("ns", key)
        assert not hit and value is None
        assert not backend.contains("ns", key)

        backend.put("ns", key, {"payload": 7})
        assert backend.contains("ns", key)
        hit, value = backend.get("ns", key)
        assert hit and value["payload"] == 7

        stats = backend.stats()
        assert stats.backend == backend.name
        assert stats.hits == 1 and stats.misses == 1 and stats.stores == 1
        assert stats.entries == 1
        assert 0.0 < stats.hit_rate < 1.0

    def test_namespaces_are_disjoint(self, kind, tmp_path):
        backend = make_backend(kind, tmp_path)
        backend.put("alpha", hex_key(2), {"v": 1})
        assert backend.contains("alpha", hex_key(2))
        assert not backend.contains("beta", hex_key(2))
        assert not backend.get("beta", hex_key(2))[0]

    def test_delete_then_scan(self, kind, tmp_path):
        backend = make_backend(kind, tmp_path)
        backend.put("ns", hex_key(3), {"v": 1})
        backend.put("ns", hex_key(4), {"v": 2})
        assert backend.delete("ns", hex_key(3))
        assert not backend.delete("ns", hex_key(3))
        assert not backend.contains("ns", hex_key(3))
        remaining = {entry.key for entry in backend.scan("ns")}
        assert len(remaining) == 1
        assert backend.stats().evicted == 1

    def test_compact_preserves_contents(self, kind, tmp_path):
        backend = make_backend(kind, tmp_path, num_shards=4)
        keys = [hex_key(index) for index in range(16)]
        for index, key in enumerate(keys):
            backend.put("ns", key, {"v": index})
        report = backend.compact()
        assert report.entries_kept == 16
        assert all(backend.get("ns", key)[0] for key in keys)

    def test_scan_ages_grow_with_the_clock(self, kind, tmp_path):
        clock = FakeClock()
        backend = make_backend(kind, tmp_path, clock=clock)
        backend.put("ns", hex_key(5), {"v": 1})
        clock.advance(100.0)
        (entry,) = list(backend.scan("ns"))
        assert entry.age_seconds == pytest.approx(100.0, abs=2.0)

    def test_read_refreshes_the_age(self, kind, tmp_path):
        clock = FakeClock()
        backend = make_backend(kind, tmp_path, clock=clock)
        backend.put("ns", hex_key(6), {"v": 1})
        clock.advance(100.0)
        assert backend.get("ns", hex_key(6))[0]
        (entry,) = list(backend.scan("ns"))
        assert entry.age_seconds == pytest.approx(0.0, abs=2.0)


# ----------------------------------------------------------------------
# Shard assignment
# ----------------------------------------------------------------------
def test_shard_index_is_stable_and_in_range():
    for num_shards in (1, 2, 4, 16):
        for index in range(64):
            shard = shard_index(hex_key(index), num_shards)
            assert 0 <= shard < num_shards
            assert shard == shard_index(hex_key(index), num_shards)


def test_shard_index_spreads_keys():
    shards = {shard_index(hex_key(index), 4) for index in range(200)}
    assert shards == {0, 1, 2, 3}


# ----------------------------------------------------------------------
# ShardedJsonlBackend specifics
# ----------------------------------------------------------------------
class TestJsonl:
    def test_rejects_non_dict_records(self, tmp_path):
        backend = make_backend("jsonl", tmp_path)
        with pytest.raises(TypeError):
            backend.put("", hex_key(1), [1, 2, 3])

    def test_rejects_bad_shard_counts(self, tmp_path):
        for num_shards in (0, -1, 100):
            with pytest.raises(ValueError):
                ShardedJsonlBackend(tmp_path / "x.jsonl", num_shards=num_shards)

    def test_writes_go_to_the_hashed_shard(self, tmp_path):
        backend = make_backend("jsonl", tmp_path, num_shards=4)
        keys = [hex_key(index) for index in range(12)]
        for key in keys:
            backend.put("", key, {"v": 1})
        for key in keys:
            shard_file = backend.shard_path(shard_index(key, 4))
            assert key in shard_file.read_text()

    def test_legacy_single_file_reads_as_shard_zero(self, tmp_path):
        legacy = make_backend("jsonl", tmp_path, num_shards=1)
        keys = [hex_key(index) for index in range(10)]
        for key in keys:
            legacy.put("", key, {"v": 1})
        assert (tmp_path / "records.jsonl").exists()

        sharded = make_backend("jsonl", tmp_path, num_shards=4)
        assert all(sharded.get("", key)[0] for key in keys)
        assert sharded.corrupt_lines == 0

    def test_append_is_visible_to_a_fresh_open(self, tmp_path):
        first = make_backend("jsonl", tmp_path, num_shards=2)
        second = make_backend("jsonl", tmp_path, num_shards=2)
        first.put("", hex_key(1), {"v": 1})
        # Not visible to an already-open backend (content-hash keys make
        # this safe: the worst case is a recompute)...
        assert not second.contains("", hex_key(1))
        # ...but a fresh open sees it.
        third = make_backend("jsonl", tmp_path, num_shards=2)
        assert third.get("", hex_key(1)) == (True, third._records[("", hex_key(1))])

    def test_corrupt_lines_counted_and_skipped(self, tmp_path):
        backend = make_backend("jsonl", tmp_path)
        backend.put("", hex_key(1), {"v": 1})
        with (tmp_path / "records.jsonl").open("a", encoding="utf-8") as handle:
            handle.write("{truncated\n")
            handle.write(json.dumps({"no_key": True}) + "\n")
            handle.write("\n")  # blank lines are not corruption
        reopened = make_backend("jsonl", tmp_path)
        assert reopened.corrupt_lines == 2
        assert len(reopened) == 1

    def test_validate_hook_marks_records_corrupt(self, tmp_path):
        backend = ShardedJsonlBackend(tmp_path / "records.jsonl")
        backend.put("", hex_key(1), {"v": 1})
        backend.put("", hex_key(2), {"other": 2})
        validated = ShardedJsonlBackend(
            tmp_path / "records.jsonl", validate=lambda record: "v" in record
        )
        assert validated.corrupt_lines == 1
        assert validated.contains("", hex_key(1))
        assert not validated.contains("", hex_key(2))

    def test_compaction_dedups_migrates_and_is_byte_stable(self, tmp_path):
        path = tmp_path / "records.jsonl"
        legacy = ShardedJsonlBackend(path)
        keys = [hex_key(index) for index in range(20)]
        for key in keys:
            legacy.put("", key, {"v": 1})
        # Duplicate some lines (a second writer racing on the same keys)
        # and corrupt one.
        with path.open("a", encoding="utf-8") as handle:
            for key in keys[:5]:
                handle.write(json.dumps({"key": key, "v": 1}) + "\n")
            handle.write("garbage\n")

        backend = ShardedJsonlBackend(path, num_shards=4)
        report = backend.compact()
        assert report.entries_kept == 20
        assert report.dropped_duplicates == 5
        assert report.dropped_corrupt == 1
        assert report.migrated_legacy > 0
        assert report.shards_rewritten == 4

        def shard_bytes():
            return [backend.shard_path(index).read_bytes() for index in range(4)]

        first = shard_bytes()
        second_report = ShardedJsonlBackend(path, num_shards=4).compact()
        assert second_report.dropped == 0
        assert shard_bytes() == first  # byte-stable under re-compaction
        reopened = ShardedJsonlBackend(path, num_shards=4)
        assert all(reopened.get("", key)[0] for key in keys)

    def test_compaction_merges_records_appended_by_another_writer(self, tmp_path):
        path = tmp_path / "records.jsonl"
        ours = ShardedJsonlBackend(path, num_shards=2)
        ours.put("", hex_key(1), {"v": 1})
        theirs = ShardedJsonlBackend(path, num_shards=2)
        theirs.put("", hex_key(2), {"v": 2})
        ours.compact()  # must not lose the other writer's record
        reopened = ShardedJsonlBackend(path, num_shards=2)
        assert reopened.contains("", hex_key(1))
        assert reopened.contains("", hex_key(2))

    def test_stray_shards_from_a_wider_layout_are_absorbed(self, tmp_path):
        path = tmp_path / "records.jsonl"
        wide = ShardedJsonlBackend(path, num_shards=8)
        keys = [hex_key(index) for index in range(24)]
        for key in keys:
            wide.put("", key, {"v": 1})
        narrow = ShardedJsonlBackend(path, num_shards=2)
        assert all(narrow.get("", key)[0] for key in keys)
        narrow.compact()
        remaining = sorted(p.name for p in tmp_path.glob("records*.jsonl"))
        assert remaining == ["records.jsonl", "records.s01.jsonl"]
        reopened = ShardedJsonlBackend(path, num_shards=2)
        assert all(reopened.contains("", key) for key in keys)

    def test_delete_survives_compaction(self, tmp_path):
        path = tmp_path / "records.jsonl"
        backend = ShardedJsonlBackend(path)
        backend.put("", hex_key(1), {"v": 1})
        backend.put("", hex_key(2), {"v": 2})
        backend.delete("", hex_key(1))
        backend.compact()
        reopened = ShardedJsonlBackend(path)
        assert not reopened.contains("", hex_key(1))
        assert reopened.contains("", hex_key(2))


# ----------------------------------------------------------------------
# PickleDirBackend specifics
# ----------------------------------------------------------------------
class TestPickleDir:
    def test_arbitrary_picklables_round_trip(self, tmp_path):
        backend = make_backend("pickle", tmp_path)
        value = {"nested": [1, (2, 3)], "text": "x" * 100}
        backend.put("stage", hex_key(1), value)
        assert backend.get("stage", hex_key(1)) == (True, value)
        assert backend.get("stage", hex_key(1))[1] == value

    def test_flat_layout_when_unsharded(self, tmp_path):
        backend = make_backend("pickle", tmp_path)
        backend.put("stage", hex_key(1), 1)
        assert (tmp_path / "pickles" / "stage" / f"{hex_key(1)[:32]}.pkl").exists()

    def test_sharded_layout_and_legacy_fallback(self, tmp_path):
        flat = make_backend("pickle", tmp_path)
        keys = [hex_key(index) for index in range(10)]
        for index, key in enumerate(keys):
            flat.put("stage", key, index)

        sharded = make_backend("pickle", tmp_path, num_shards=4)
        assert all(sharded.get("stage", key)[0] for key in keys)
        sharded.put("stage", hex_key(99), 99)
        expected_dir = f"s{shard_index(hex_key(99)[:32], 4):02d}"
        assert (tmp_path / "pickles" / "stage" / expected_dir / f"{hex_key(99)[:32]}.pkl").exists()

    def test_corrupt_file_counts_and_misses(self, tmp_path):
        backend = make_backend("pickle", tmp_path)
        backend.put("stage", hex_key(1), "good")
        target = tmp_path / "pickles" / "stage" / f"{hex_key(1)[:32]}.pkl"
        target.write_bytes(b"\x80\x04 not a pickle")
        hit, _ = backend.get("stage", hex_key(1))
        assert not hit
        assert backend.counters.corrupt == 1

    def test_compaction_migrates_drops_corrupt_and_cleans_tmp(self, tmp_path):
        import os

        flat = make_backend("pickle", tmp_path)
        keys = [hex_key(index) for index in range(8)]
        for index, key in enumerate(keys):
            flat.put("stage", key, index)
        stage_dir = tmp_path / "pickles" / "stage"
        (stage_dir / f"{hex_key(50)[:32]}.pkl").write_bytes(b"junk")
        orphan = stage_dir / "leftover.pkl.12345.tmp"
        orphan.write_bytes(b"partial write from an interrupted run")
        stale = time.time() - 3600
        os.utime(orphan, times=(stale, stale))
        in_flight = stage_dir / "racing.pkl.99999.tmp"
        in_flight.write_bytes(b"a live writer's in-flight temp file")

        backend = make_backend("pickle", tmp_path, num_shards=4)
        report = backend.compact()
        assert report.entries_kept == 8
        assert report.dropped_corrupt == 1
        assert report.migrated_legacy == 8
        # Stale orphans are swept; a fresh temp file (possibly a live
        # writer mid-rename) is left alone.
        assert list(stage_dir.glob("*.tmp")) == [in_flight]
        assert not list(stage_dir.glob("*.pkl"))  # everything migrated into sNN/
        assert all(backend.get("stage", key)[0] for key in keys)

    def test_compaction_resolves_duplicates_across_layouts(self, tmp_path):
        sharded = make_backend("pickle", tmp_path, num_shards=4)
        sharded.put("stage", hex_key(1), "sharded-copy")
        flat = make_backend("pickle", tmp_path, num_shards=1)
        flat.put("stage", hex_key(1), "sharded-copy")  # same key, legacy location

        report = sharded.compact()
        assert report.dropped_duplicates == 1
        assert report.entries_kept == 1
        assert sharded.get("stage", hex_key(1)) == (True, "sharded-copy")

    def test_unsharding_migrates_back_to_flat(self, tmp_path):
        sharded = make_backend("pickle", tmp_path, num_shards=4)
        keys = [hex_key(index) for index in range(6)]
        for key in keys:
            sharded.put("stage", key, "v")
        flat = make_backend("pickle", tmp_path, num_shards=1)
        report = flat.compact()
        assert report.migrated_legacy == 6
        stage_dir = tmp_path / "pickles" / "stage"
        assert len(list(stage_dir.glob("*.pkl"))) == 6
        # Emptied shard directories stay (removing them races concurrent
        # writers); they just hold no entries any more.
        assert not list(stage_dir.glob("s??/*.pkl"))
        assert all(flat.get("stage", key)[0] for key in keys)

    def test_scan_merges_cross_layout_copies(self, tmp_path):
        clock = FakeClock()
        sharded = make_backend("pickle", tmp_path, clock=clock, num_shards=4)
        sharded.put("stage", hex_key(1), "copy")
        flat = make_backend("pickle", tmp_path, clock=clock, num_shards=1)
        flat.put("stage", hex_key(1), "copy")  # same key, legacy location

        (entry,) = list(sharded.scan("stage"))  # one logical entry, not two
        assert entry.key == hex_key(1)[:32]
        assert len(sharded) == 1
        assert sharded.stats().entries == 1
        assert sharded.stats().disk_files == 2

    def test_gc_judges_a_duplicated_key_by_its_freshest_copy(self, tmp_path):
        from repro.store import StoreJanitor

        clock = FakeClock()
        flat = make_backend("pickle", tmp_path, clock=clock, num_shards=1)
        flat.put("stage", hex_key(1), "copy")
        clock.advance(1000.0)
        sharded = make_backend("pickle", tmp_path, clock=clock, num_shards=4)
        sharded.put("stage", hex_key(1), "copy")  # fresh duplicate in sNN/

        report = StoreJanitor(sharded, max_age_seconds=500.0).sweep(compact=False)
        assert report.evicted == 0  # the stale flat copy must not doom the key
        assert sharded.contains("stage", hex_key(1))


# ----------------------------------------------------------------------
# Batch protocol methods (get_many / put_many)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", BACKEND_KINDS)
class TestBatchMethods:
    def test_put_many_then_get_many(self, kind, tmp_path):
        backend = make_backend(kind, tmp_path, num_shards=4)
        records = {hex_key(index): {"v": index} for index in range(20)}
        stored = backend.put_many("ns", records)
        assert stored == len(records)

        found = backend.get_many("ns", list(records) + [hex_key(99)])
        assert set(found) == set(records)
        for key, value in records.items():
            assert {name: found[key][name] for name in value} == value
        assert backend.get_many("ns", []) == {}

    def test_put_many_skips_existing_keys(self, kind, tmp_path):
        backend = make_backend(kind, tmp_path, num_shards=2)
        records = {hex_key(index): {"v": index} for index in range(5)}
        backend.put_many("ns", records)
        stores_before = backend.counters.stores
        assert backend.put_many("ns", records) == 0
        assert backend.counters.stores == stores_before

    def test_get_many_counts_hits_and_misses(self, kind, tmp_path):
        backend = make_backend(kind, tmp_path)
        backend.put_many("ns", {hex_key(1): {"v": 1}})
        backend.get_many("ns", [hex_key(1), hex_key(2), hex_key(3)])
        assert backend.counters.hits == 1
        assert backend.counters.misses == 2

    def test_get_many_refreshes_gc_ages(self, kind, tmp_path):
        """A batch read protects its keys from eviction like a get does."""
        from repro.store import StoreJanitor

        clock = FakeClock()
        backend = make_backend(kind, tmp_path, clock=clock, num_shards=2)
        backend.put_many("ns", {hex_key(index): {"v": index} for index in range(4)})
        clock.advance(1000.0)
        backend.get_many("ns", [hex_key(0), hex_key(1)])

        StoreJanitor(backend, max_age_seconds=500.0).sweep()
        assert backend.contains("ns", hex_key(0))
        assert backend.contains("ns", hex_key(1))
        assert not backend.contains("ns", hex_key(2))
        assert not backend.contains("ns", hex_key(3))


def test_jsonl_put_many_appends_one_batch_per_shard(tmp_path):
    """The sharded override groups lines by shard and survives a reopen."""
    backend = make_backend("jsonl", tmp_path, num_shards=4)
    records = {hex_key(index): {"v": index} for index in range(40)}
    backend.put_many("ns", records)

    shards_touched = [
        shard
        for shard in range(4)
        if backend.shard_path(shard).exists()
    ]
    assert len(shards_touched) > 1  # a 40-key batch spreads over shards

    reopened = make_backend("jsonl", tmp_path, num_shards=4)
    assert reopened.corrupt_lines == 0
    assert len(reopened) == 40
    for key, value in records.items():
        hit, record = reopened.get("ns", key)
        assert hit and record["v"] == value["v"]


def test_jsonl_put_many_rejects_the_whole_batch_on_a_bad_value(tmp_path):
    """A domain error must not leave earlier records admitted in memory
    but never appended to disk."""
    backend = make_backend("jsonl", tmp_path, num_shards=2)
    with pytest.raises(TypeError):
        backend.put_many("ns", {hex_key(1): {"v": 1}, hex_key(2): [1, 2]})
    assert not backend.contains("ns", hex_key(1))
    assert backend.counters.stores == 0
    reopened = make_backend("jsonl", tmp_path, num_shards=2)
    assert len(reopened) == 0
