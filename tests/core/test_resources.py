"""Tests for the primitive/critical resource classification."""

from __future__ import annotations

import pytest

from repro.arch.components import Component, ComponentKind, ComponentLibrary
from repro.core.resources import (
    ClassificationThresholds,
    ResourceClass,
    classify_components,
    component_for_optype,
    critical_components,
    optypes_for_component,
)
from repro.errors import ArchitectureError
from repro.ir import OpType


def test_default_classification_marks_only_multiplier_critical(library):
    classification = classify_components(library)
    assert classification["array_multiplier"] == ResourceClass.AREA_AND_DELAY_CRITICAL
    assert classification["alu"] == ResourceClass.PRIMITIVE
    assert classification["shift_logic"] == ResourceClass.PRIMITIVE
    assert classification["multiplexer"] == ResourceClass.PRIMITIVE


def test_critical_components_sorted_by_area(library):
    critical = critical_components(library)
    assert [component.name for component in critical] == ["array_multiplier"]


def test_resource_class_flags():
    assert ResourceClass.AREA_AND_DELAY_CRITICAL.is_critical
    assert ResourceClass.AREA_AND_DELAY_CRITICAL.is_area_critical
    assert ResourceClass.AREA_AND_DELAY_CRITICAL.is_delay_critical
    assert ResourceClass.AREA_CRITICAL.is_area_critical
    assert not ResourceClass.AREA_CRITICAL.is_delay_critical
    assert not ResourceClass.PRIMITIVE.is_critical


def test_thresholds_validation():
    with pytest.raises(ArchitectureError):
        ClassificationThresholds(area_fraction=0.0)
    with pytest.raises(ArchitectureError):
        ClassificationThresholds(delay_fraction=1.5)


def test_custom_thresholds_change_outcome(library):
    # With a very low area threshold, the ALU also becomes area-critical.
    loose = ClassificationThresholds(area_fraction=0.2, delay_fraction=0.2)
    classification = classify_components(library, loose)
    assert classification["alu"].is_critical


def test_classification_requires_functional_units():
    with pytest.raises(ArchitectureError):
        classify_components(ComponentLibrary())


def test_area_only_and_delay_only_classes():
    library = ComponentLibrary(
        [
            Component("big_slow", ComponentKind.MULTIPLIER, area_slices=100, delay_ns=1),
            Component("small_fast", ComponentKind.ALU, area_slices=10, delay_ns=1),
            Component("small_slow", ComponentKind.SHIFTER, area_slices=10, delay_ns=20),
        ]
    )
    classification = classify_components(library)
    assert classification["big_slow"] == ResourceClass.AREA_CRITICAL
    assert classification["small_slow"] == ResourceClass.DELAY_CRITICAL
    assert classification["small_fast"] == ResourceClass.PRIMITIVE


def test_component_for_optype_mapping():
    assert component_for_optype(OpType.MUL) == "array_multiplier"
    assert component_for_optype(OpType.ADD) == "alu"
    assert component_for_optype(OpType.SHIFT) == "shift_logic"
    assert component_for_optype(OpType.LOAD) is None
    assert component_for_optype(OpType.CONST) is None


def test_optypes_for_component_inverse():
    assert OpType.MUL in optypes_for_component("array_multiplier")
    alu_ops = optypes_for_component("alu")
    assert OpType.ADD in alu_ops and OpType.SUB in alu_ops and OpType.ABS in alu_ops
