"""Tests for RSP parameters and design-space enumeration."""

from __future__ import annotations

import pytest

from repro.core.rsp_params import (
    RSPParameters,
    base_parameters,
    enumerate_design_space,
    paper_parameters,
)
from repro.errors import ExplorationError


def test_base_parameters_classification():
    parameters = base_parameters()
    assert parameters.kind == "base"
    assert not parameters.uses_sharing
    assert not parameters.uses_pipelining
    assert parameters.describe() == "base"


def test_paper_parameters_match_figure8():
    rs2 = paper_parameters(2, pipelined=False)
    assert rs2.kind == "rs"
    assert (rs2.rows_shared, rs2.cols_shared) == (2, 0)
    rsp3 = paper_parameters(3, pipelined=True)
    assert rsp3.kind == "rsp"
    assert (rsp3.rows_shared, rsp3.cols_shared) == (2, 1)
    assert rsp3.pipeline_stages == 2


def test_paper_parameters_invalid_design():
    with pytest.raises(ExplorationError):
        paper_parameters(7, pipelined=False)


def test_parameter_validation():
    with pytest.raises(ExplorationError):
        RSPParameters(pipeline_stages=0)
    with pytest.raises(ExplorationError):
        RSPParameters(pipelined_resources=("array_multiplier",), pipeline_stages=1)
    with pytest.raises(ExplorationError):
        RSPParameters(shared_resources=("array_multiplier",))  # no rows/cols
    with pytest.raises(ExplorationError):
        RSPParameters(rows_shared=1)  # rows without a shared type


def test_to_architecture_round_trip():
    parameters = paper_parameters(4, pipelined=True)
    spec = parameters.to_architecture(name="RSP#4")
    assert spec.name == "RSP#4"
    assert spec.sharing.rows_shared == 2
    assert spec.sharing.cols_shared == 2
    assert spec.pipelining.stages == 2
    assert spec.kind == "rsp"


def test_to_architecture_default_name_is_description():
    parameters = paper_parameters(1, pipelined=False)
    spec = parameters.to_architecture()
    assert spec.name == parameters.describe()
    assert "rs(" in spec.name


def test_enumerate_design_space_default_sweep():
    candidates = enumerate_design_space()
    # base + 8 topologies x 2 stage options
    assert len(candidates) == 1 + 8 * 2
    kinds = {candidate.kind for candidate in candidates}
    assert kinds == {"base", "rs", "rsp"}
    descriptions = [candidate.describe() for candidate in candidates]
    assert len(descriptions) == len(set(descriptions))


def test_enumerate_design_space_without_base():
    candidates = enumerate_design_space(include_base=False)
    assert all(candidate.kind != "base" for candidate in candidates)


def test_enumerate_design_space_custom_bounds():
    candidates = enumerate_design_space(max_rows_shared=1, max_cols_shared=0, stage_options=(1,))
    assert [candidate.describe() for candidate in candidates] == ["base", "rs(shr=1,shc=0,stages=1)"]


def test_enumerate_design_space_rejects_bad_inputs():
    with pytest.raises(ExplorationError):
        enumerate_design_space(stage_options=())
    with pytest.raises(ExplorationError):
        enumerate_design_space(max_rows_shared=-1)
    with pytest.raises(ExplorationError):
        enumerate_design_space(stage_options=(0,))
