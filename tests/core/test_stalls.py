"""Tests for the upper-bound RS/RP stall estimator."""

from __future__ import annotations

import pytest

from repro.arch import base_architecture, rs_architecture, rsp_architecture
from repro.core.stalls import CriticalOpIssue, ScheduleProfile, StallEstimator
from repro.errors import ExplorationError


def make_profile(issues, length=10, kernel="k") -> ScheduleProfile:
    return ScheduleProfile(
        kernel=kernel,
        length=length,
        critical_issues=tuple(issues),
        rows=8,
        cols=8,
    )


def burst_profile(mults_in_cycle: int, cycle: int = 2, rows: int = 8) -> ScheduleProfile:
    """``mults_in_cycle`` multiplications all issued in the same cycle, spread over rows."""
    issues = [
        CriticalOpIssue(cycle=cycle, row=index % rows, col=index // rows, iteration=index,
                        has_immediate_dependent=True)
        for index in range(mults_in_cycle)
    ]
    return make_profile(issues)


def test_profile_validation():
    with pytest.raises(ExplorationError):
        ScheduleProfile(kernel="k", length=0, critical_issues=(), rows=8, cols=8)
    with pytest.raises(ExplorationError):
        ScheduleProfile(kernel="k", length=1, critical_issues=(), rows=0, cols=8)


def test_profile_max_per_cycle_and_grouping():
    profile = burst_profile(6)
    assert profile.max_critical_per_cycle == 6
    assert set(profile.issues_by_cycle()) == {2}


def test_no_stalls_on_base_architecture():
    estimator = StallEstimator()
    estimate = estimator.estimate(burst_profile(16), base_architecture())
    assert estimate.rs_stalls == 0
    assert estimate.rp_stalls == 0
    assert estimate.estimated_cycles == 10


def test_rs_stalls_zero_when_capacity_sufficient():
    estimator = StallEstimator()
    # 8 mults spread one per row, one shared multiplier per row -> fits.
    estimate = estimator.estimate(burst_profile(8), rs_architecture(1))
    assert estimate.rs_stalls == 0


def test_rs_stalls_grow_when_capacity_lacking():
    estimator = StallEstimator()
    # 16 mults (two per row) but only one shared multiplier per row.
    profile = burst_profile(16)
    rs1 = estimator.estimate_rs_stalls(profile, rs_architecture(1))
    rs2 = estimator.estimate_rs_stalls(profile, rs_architecture(2))
    assert rs1 >= 1
    assert rs2 == 0
    assert rs1 >= rs2


def test_rs_stalls_use_column_units_as_fallback():
    estimator = StallEstimator()
    # 24 mults in one cycle: three per row, and the third multiplication of
    # row r sits in column r so the overflow spreads over all columns.
    issues = []
    for row in range(8):
        issues.append(CriticalOpIssue(cycle=0, row=row, col=0, iteration=row))
        issues.append(CriticalOpIssue(cycle=0, row=row, col=1, iteration=8 + row))
        issues.append(CriticalOpIssue(cycle=0, row=row, col=row, iteration=16 + row))
    profile = make_profile(issues)
    # RS#3 provides two per row plus one per column: 2 row units absorb two
    # mults per row, the third lands on its column's unit.
    assert estimator.estimate_rs_stalls(profile, rs_architecture(3)) == 0
    assert estimator.estimate_rs_stalls(profile, rs_architecture(2)) >= 1


def test_rp_stalls_require_pipelining_and_dependents():
    estimator = StallEstimator()
    profile = burst_profile(4)
    assert estimator.estimate_rp_stalls(profile, rs_architecture(2)) == 0
    assert estimator.estimate_rp_stalls(profile, rsp_architecture(2)) == 1


def test_rp_stalls_consecutive_cycles_counted_once():
    estimator = StallEstimator()
    issues = [
        CriticalOpIssue(cycle=cycle, row=0, col=0, iteration=cycle, has_immediate_dependent=True)
        for cycle in (2, 3, 4, 8)
    ]
    profile = make_profile(issues)
    # Two runs of consecutive multiplication cycles: {2,3,4} and {8}.
    assert estimator.estimate_rp_stalls(profile, rsp_architecture(2)) == 2
    # A deeper pipeline pays (stages - 1) per run.
    assert estimator.estimate_rp_stalls(profile, rsp_architecture(2, stages=3)) == 4


def test_rp_stalls_zero_without_immediate_dependents():
    estimator = StallEstimator()
    issues = [CriticalOpIssue(cycle=1, row=0, col=0, iteration=0, has_immediate_dependent=False)]
    assert estimator.estimate_rp_stalls(make_profile(issues), rsp_architecture(1)) == 0


def test_total_estimate_combines_both_kinds():
    estimator = StallEstimator()
    profile = burst_profile(16)
    estimate = estimator.estimate(profile, rsp_architecture(1))
    assert estimate.total_stalls == estimate.rs_stalls + estimate.rp_stalls
    assert estimate.estimated_cycles == profile.length + estimate.total_stalls
    assert estimate.architecture == "RSP#1"


def test_rs_estimate_is_upper_bound_monotone_in_capacity():
    estimator = StallEstimator()
    profile = burst_profile(32)
    stalls = [
        estimator.estimate_rs_stalls(profile, rs_architecture(design)) for design in range(1, 5)
    ]
    assert stalls == sorted(stalls, reverse=True)
