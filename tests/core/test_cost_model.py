"""Tests for the hardware cost model (paper Eq. 2)."""

from __future__ import annotations

import pytest

from repro.arch import base_architecture, rs_architecture, rsp_architecture
from repro.core.cost_model import HardwareCostModel
from repro.synthesis.calibration import PAPER_TABLE2


def test_full_pe_area_matches_paper_table1(cost_model):
    assert cost_model.full_pe_area() == pytest.approx(910.0)


def test_shared_pe_area_close_to_paper(cost_model, rs2_arch):
    # Paper Table 2 reports 489 slices for the PE without its multiplier.
    assert cost_model.shared_pe_area(rs2_arch) == pytest.approx(494.0)
    assert abs(cost_model.shared_pe_area(rs2_arch) - 489.0) / 489.0 < 0.02


def test_base_array_area_is_num_pes_times_pe_area(cost_model, base_arch):
    assert cost_model.array_area(base_arch) == pytest.approx(64 * 910.0)


def test_register_area_only_for_pipelined(cost_model, rs2_arch, rsp2_arch):
    assert cost_model.register_area_per_pe(rs2_arch) == 0.0
    assert cost_model.register_area_per_pe(rsp2_arch) > 0.0


def test_switch_area_grows_with_ports(cost_model):
    areas = [cost_model.switch_area_per_pe(rs_architecture(design)) for design in range(1, 5)]
    assert areas == sorted(areas)
    assert areas[0] == pytest.approx(10.0)
    assert areas[-1] == pytest.approx(68.0)


def test_breakdown_totals_are_consistent(cost_model, rsp2_arch):
    breakdown = cost_model.breakdown(rsp2_arch)
    assert breakdown.array_total == pytest.approx(
        breakdown.pe_total
        + breakdown.switch_total
        + breakdown.register_total
        + breakdown.shared_total
    )
    assert breakdown.shared_total == pytest.approx(
        breakdown.shared_resource_area * rsp2_arch.total_shared_units
    )


def test_every_sharing_design_is_smaller_than_base(cost_model):
    base = base_architecture()
    for design in range(1, 5):
        assert cost_model.satisfies_cost_constraint(rs_architecture(design), base)
        assert cost_model.satisfies_cost_constraint(rsp_architecture(design), base)


def test_area_reduction_ordering_matches_paper(cost_model):
    """RS#1 saves the most area, RS#4 the least; RSP adds register overhead."""
    rs_reductions = [
        cost_model.area_reduction_percent(rs_architecture(design)) for design in range(1, 5)
    ]
    assert rs_reductions == sorted(rs_reductions, reverse=True)
    rsp_reductions = [
        cost_model.area_reduction_percent(rsp_architecture(design)) for design in range(1, 5)
    ]
    assert rsp_reductions == sorted(rsp_reductions, reverse=True)
    for rs_value, rsp_value in zip(rs_reductions, rsp_reductions):
        assert rs_value > rsp_value


def test_area_within_fifteen_percent_of_paper(cost_model):
    for design in range(1, 5):
        for factory in (rs_architecture, rsp_architecture):
            spec = factory(design)
            paper = PAPER_TABLE2[spec.name].array_area_slices
            measured = cost_model.array_area(spec)
            assert abs(measured - paper) / paper < 0.15


def test_rsp_larger_than_matching_rs(cost_model):
    for design in range(1, 5):
        assert cost_model.array_area(rsp_architecture(design)) > cost_model.array_area(
            rs_architecture(design)
        )


def test_area_reduction_of_base_is_zero(cost_model, base_arch):
    assert cost_model.area_reduction_percent(base_arch) == pytest.approx(0.0)
