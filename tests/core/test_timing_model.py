"""Tests for the critical-path timing model."""

from __future__ import annotations

import pytest

from repro.arch import (
    ArchitectureSpec,
    PipeliningSpec,
    SharingTopology,
    base_architecture,
    default_array_spec,
    rs_architecture,
    rsp_architecture,
)
from repro.core.timing_model import TimingModel
from repro.errors import TimingModelError
from repro.synthesis.calibration import PAPER_TABLE2


def test_full_pe_path_matches_paper_table1(timing_model):
    assert timing_model.full_pe_path_ns() == pytest.approx(25.6)


def test_primitive_pe_path_matches_paper_table2(timing_model):
    assert timing_model.primitive_pe_path_ns() == pytest.approx(15.3)


def test_base_array_delay_matches_paper(timing_model, base_arch):
    assert timing_model.critical_path_ns(base_arch) == pytest.approx(26.0)


def test_rs_delay_grows_with_switch_ports(timing_model):
    delays = [timing_model.critical_path_ns(rs_architecture(design)) for design in range(1, 5)]
    assert delays == sorted(delays)
    assert all(delay > 26.0 for delay in delays)


def test_rsp_delay_is_much_shorter_than_base(timing_model, base_arch):
    base_delay = timing_model.critical_path_ns(base_arch)
    for design in range(1, 5):
        rsp_delay = timing_model.critical_path_ns(rsp_architecture(design))
        assert rsp_delay < base_delay * 0.80


def test_delays_within_ten_percent_of_paper(timing_model, all_paper_archs):
    for spec in all_paper_archs:
        paper = PAPER_TABLE2[spec.name].array_delay_ns
        measured = timing_model.critical_path_ns(spec)
        assert abs(measured - paper) / paper < 0.10, spec.name


def test_delay_reduction_sign_convention(timing_model):
    # RS designs are slower than the base (negative reduction), RSP faster.
    for design in range(1, 5):
        assert timing_model.delay_reduction_percent(rs_architecture(design)) < 0
        assert timing_model.delay_reduction_percent(rsp_architecture(design)) > 0


def test_clock_frequency_inverse_of_period(timing_model, base_arch):
    frequency = timing_model.clock_frequency_mhz(base_arch)
    assert frequency == pytest.approx(1000.0 / 26.0)


def test_more_pipeline_stages_shorten_the_multiplier_stage(timing_model):
    two_stage = rsp_architecture(2, stages=2)
    three_stage = rsp_architecture(2, stages=3)
    assert timing_model.shared_resource_stage_ns(three_stage) < timing_model.shared_resource_stage_ns(two_stage)
    assert timing_model.critical_path_ns(three_stage) <= timing_model.critical_path_ns(two_stage)


def test_rp_only_design_point(timing_model, base_arch):
    """Pipelining a per-PE multiplier (no sharing) still shortens the path."""
    rp_only = ArchitectureSpec(
        name="RP-only",
        array=default_array_spec(),
        sharing=SharingTopology(0, 0),
        pipelining=PipeliningSpec(stages=2),
    )
    assert timing_model.critical_path_ns(rp_only) < timing_model.critical_path_ns(base_arch)


def test_negative_wiring_margin_rejected(library):
    with pytest.raises(TimingModelError):
        TimingModel(library, wiring_margin_ns=-1.0)


def test_breakdown_reports_components(timing_model, rsp2_arch):
    breakdown = timing_model.breakdown(rsp2_arch)
    assert breakdown.architecture == "RSP#2"
    assert breakdown.switch_detour_ns == pytest.approx(2 * 1.2)
    assert breakdown.critical_path_ns >= breakdown.pe_internal_path_ns
