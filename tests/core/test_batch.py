"""Tests for the vectorized wave evaluator against its scalar oracle."""

from __future__ import annotations

import pytest

from repro.core.batch import BatchEvaluator, WaveColumns, numpy_available
from repro.core.exploration import (
    ExplorationConstraints,
    RSPDesignSpaceExplorer,
    is_feasible,
)
from repro.core.pareto import pareto_front
from repro.core.rsp_params import RSPParameters, base_parameters, enumerate_design_space
from repro.core.stalls import CriticalOpIssue, ScheduleProfile
from repro.errors import ExplorationError

numpy = pytest.importorskip("numpy")


def dense_profiles() -> dict:
    """Profiles with real carry pressure so RS stall walks actually run."""
    crowded = [
        CriticalOpIssue(
            cycle=cycle,
            row=index % 3,
            col=index % 2,
            iteration=index,
            has_immediate_dependent=index % 2 == 0,
        )
        for cycle in range(5)
        for index in range(12)
    ]
    sparse = [
        CriticalOpIssue(cycle=2 * k, row=k % 8, col=(k + 1) % 8, iteration=k)
        for k in range(6)
    ]
    return {
        "crowded": ScheduleProfile(
            kernel="crowded", length=9, critical_issues=tuple(crowded), rows=8, cols=8
        ),
        "sparse": ScheduleProfile(
            kernel="sparse", length=15, critical_issues=tuple(sparse), rows=8, cols=8
        ),
        "empty": ScheduleProfile(
            kernel="empty", length=7, critical_issues=(), rows=8, cols=8
        ),
    }


@pytest.fixture(scope="module")
def explorer():
    return RSPDesignSpaceExplorer(dense_profiles())


@pytest.fixture(scope="module")
def evaluator(explorer):
    return BatchEvaluator.from_explorer(explorer)


@pytest.fixture(scope="module")
def grid():
    return enumerate_design_space(
        max_rows_shared=4, max_cols_shared=4, stage_options=(1, 2, 3)
    )


@pytest.fixture(scope="module")
def batch(evaluator, grid):
    return evaluator.compute(evaluator.encode(grid))


# ----------------------------------------------------------------------
# Availability
# ----------------------------------------------------------------------
def test_available_with_numpy_present():
    assert numpy_available()
    assert BatchEvaluator.available()


def test_unavailable_without_numpy(monkeypatch, explorer):
    import repro.core.batch as batch_module

    monkeypatch.setattr(batch_module, "_np", None)
    assert not BatchEvaluator.available()
    assert BatchEvaluator.from_explorer(explorer) is None
    with pytest.raises(ExplorationError):
        BatchEvaluator(explorer.profiles)


def test_requires_profiles():
    with pytest.raises(ExplorationError):
        BatchEvaluator({})


# ----------------------------------------------------------------------
# Bit-identical equivalence with the scalar oracle
# ----------------------------------------------------------------------
def test_evaluate_matches_scalar_exactly(explorer, evaluator, grid):
    scalar = [explorer.evaluate(candidate) for candidate in grid]
    vectorized = evaluator.evaluate(grid)
    assert len(scalar) == len(vectorized)
    for expected, actual in zip(scalar, vectorized):
        # Dataclass equality covers parameters, the architecture spec, the
        # exact floats and the whole stall dictionary.
        assert actual == expected
        assert actual.area_slices == expected.area_slices  # bitwise, not approx
        assert actual.critical_path_ns == expected.critical_path_ns
        assert actual.total_estimated_cycles == expected.total_estimated_cycles
        assert actual.total_execution_time_ns == expected.total_execution_time_ns


def test_evaluate_honours_names(explorer, evaluator):
    candidates = [base_parameters(), RSPParameters(shared_resources=("array_multiplier",), rows_shared=2)]
    names = ["Base", "RS-two-rows"]
    vectorized = evaluator.evaluate(candidates, names=names)
    scalar = [explorer.evaluate(c, name=n) for c, n in zip(candidates, names)]
    assert vectorized == scalar
    assert [e.architecture.name for e in vectorized] == names
    for evaluation in vectorized:
        for estimate in evaluation.stall_estimates.values():
            assert estimate.architecture == evaluation.architecture.name


def test_evaluate_keep_materializes_survivors_only(explorer, evaluator, grid):
    keep = [0, 5, len(grid) - 1]
    survivors = evaluator.evaluate(grid, keep=keep)
    assert len(survivors) == len(keep)
    for position, evaluation in zip(keep, survivors):
        assert evaluation == explorer.evaluate(grid[position])


# ----------------------------------------------------------------------
# Vectorized filters
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "constraints",
    [
        ExplorationConstraints(),
        ExplorationConstraints(max_execution_time_ratio=1.1),
        ExplorationConstraints(max_stall_cycles=4),
        ExplorationConstraints(max_area_slices=900.0, max_execution_time_ratio=2.0),
    ],
)
def test_feasibility_mask_matches_is_feasible(explorer, evaluator, grid, batch, constraints):
    base = explorer.evaluate(base_parameters())
    mask = evaluator.feasibility_mask(batch, base, constraints)
    scalar = [
        is_feasible(explorer.evaluate(candidate), base, constraints) for candidate in grid
    ]
    assert list(mask) == scalar


def test_early_reject_mask_matches_engine_filter(explorer, evaluator, grid, batch):
    from repro.engine.executor import EvaluationEngine
    from repro.engine.frontier import ParetoFrontier
    from repro.engine.jobs import EvaluationJob

    base = explorer.evaluate(base_parameters())
    frontier = ParetoFrontier(num_objectives=2)
    frontier.add((base.area_slices, base.total_execution_time_ns))
    # Seed a few completed feasible points so the filter has teeth.
    for candidate in grid[:20]:
        evaluation = explorer.evaluate(candidate)
        if is_feasible(evaluation, base, ExplorationConstraints()):
            frontier.add((evaluation.area_slices, evaluation.total_execution_time_ns))
    lower_bound = sum(profile.length for profile in explorer.profiles.values())

    engine = EvaluationEngine(explorer)
    mask = evaluator.early_reject_mask(batch, frontier, lower_bound)
    scalar = [
        engine._early_reject(EvaluationJob(parameters=candidate), frontier, lower_bound)
        for candidate in grid
    ]
    assert list(mask) == scalar
    assert any(mask), "filter should reject something on this grid"


def test_early_reject_mask_empty_frontier(evaluator, batch):
    from repro.engine.frontier import ParetoFrontier

    mask = evaluator.early_reject_mask(batch, ParetoFrontier(num_objectives=2), 10)
    assert not mask.any()


def test_pareto_indices_match_scalar_front(explorer, evaluator, grid, batch):
    evaluations = [explorer.evaluate(candidate) for candidate in grid]
    front = pareto_front(
        evaluations,
        objectives=(
            lambda e: e.area_slices,
            lambda e: e.total_execution_time_ns,
        ),
    )
    indices = evaluator.pareto_indices(batch)
    assert [evaluations[i] for i in indices] == front


def test_pareto_indices_with_mask(explorer, evaluator, grid, batch):
    base = explorer.evaluate(base_parameters())
    mask = evaluator.feasibility_mask(batch, base)
    evaluations = [explorer.evaluate(candidate) for candidate in grid]
    feasible = [
        e for e, keep in zip(evaluations, mask) if keep
    ]
    front = pareto_front(
        feasible,
        objectives=(
            lambda e: e.area_slices,
            lambda e: e.total_execution_time_ns,
        ),
    )
    indices = evaluator.pareto_indices(batch, mask=mask)
    assert [evaluations[i] for i in indices] == front


# ----------------------------------------------------------------------
# Encoding details
# ----------------------------------------------------------------------
def test_encode_columns_shape_and_pairs(evaluator, grid):
    columns = evaluator.encode(grid)
    assert len(columns) == len(grid)
    assert len(columns.kind) == len(grid)
    distinct = {
        (candidate.rows_shared, candidate.cols_shared)
        for candidate in grid
        if candidate.uses_sharing
    }
    assert set(columns.pairs) == distinct
    for position, candidate in enumerate(grid):
        assert columns.sharing[position] == candidate.uses_sharing
        assert columns.pipelined[position] == candidate.uses_pipelining
        if candidate.uses_sharing:
            pair = columns.pairs[int(columns.pair_index[position])]
            assert pair == (candidate.rows_shared, candidate.cols_shared)


def test_compute_totals_consistent(evaluator, grid, batch):
    base_cycles = sum(table.length for table in evaluator.tables)
    totals = batch.rs_stalls.sum(axis=0) + batch.rp_stalls.sum(axis=0)
    assert (batch.total_stalls == totals).all()
    assert (batch.total_cycles == base_cycles + totals).all()
    assert (
        batch.total_execution_time_ns == batch.total_cycles * batch.critical_path_ns
    ).all()


def test_reload_with_numpy_stubbed_out_disables_fast_path():
    """A clean import with numpy uninstallable must leave the module usable."""
    import importlib
    import sys

    import repro.core.batch as batch_module

    saved = sys.modules.get("numpy")
    sys.modules["numpy"] = None  # makes ``import numpy`` raise ImportError
    try:
        importlib.reload(batch_module)
        assert batch_module._np is None
        assert not batch_module.numpy_available()
        assert not batch_module.BatchEvaluator.available()
        with pytest.raises(ExplorationError):
            batch_module.BatchEvaluator(dense_profiles())
    finally:
        if saved is not None:
            sys.modules["numpy"] = saved
        else:
            del sys.modules["numpy"]
        importlib.reload(batch_module)
    assert batch_module.numpy_available()
