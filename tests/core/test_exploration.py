"""Tests for the RSP design-space exploration engine."""

from __future__ import annotations

import pytest

from repro.core.exploration import (
    DesignPointEvaluation,
    ExplorationConstraints,
    ExplorationResult,
    RSPDesignSpaceExplorer,
)
from repro.core.rsp_params import enumerate_design_space, paper_parameters
from repro.core.stalls import CriticalOpIssue, ScheduleProfile
from repro.errors import ExplorationError


def synthetic_profiles() -> dict:
    """Two synthetic kernels: one multiplication-heavy, one without mults."""
    heavy_issues = [
        CriticalOpIssue(cycle=cycle, row=index % 8, col=index // 8, iteration=index,
                        has_immediate_dependent=True)
        for cycle in range(4)
        for index in range(16)
    ]
    heavy = ScheduleProfile(kernel="heavy", length=12, critical_issues=tuple(heavy_issues),
                            rows=8, cols=8)
    light = ScheduleProfile(kernel="light", length=20, critical_issues=(), rows=8, cols=8)
    return {"heavy": heavy, "light": light}


@pytest.fixture(scope="module")
def explorer():
    return RSPDesignSpaceExplorer(synthetic_profiles())


def test_explorer_requires_profiles():
    with pytest.raises(ExplorationError):
        RSPDesignSpaceExplorer({})


def test_evaluate_single_candidate(explorer):
    evaluation = explorer.evaluate(paper_parameters(2, pipelined=True), name="RSP#2")
    assert isinstance(evaluation, DesignPointEvaluation)
    assert evaluation.architecture.name == "RSP#2"
    assert set(evaluation.stall_estimates) == {"heavy", "light"}
    assert evaluation.total_estimated_cycles >= 12 + 20
    assert evaluation.total_execution_time_ns > 0
    assert evaluation.area_delay_product > 0


def test_explore_default_sweep(explorer):
    result = explorer.explore()
    assert isinstance(result, ExplorationResult)
    assert len(result.evaluated) == len(enumerate_design_space())
    # Every feasible design is cheaper than the base (paper Eq. 2 constraint).
    base_area = result.base.area_slices
    for evaluation in result.feasible:
        if evaluation.parameters.kind != "base":
            assert evaluation.area_slices < base_area
    assert result.pareto
    assert result.selected is not None
    assert result.selected in result.pareto


def test_pareto_members_are_feasible(explorer):
    result = explorer.explore()
    feasible_names = {evaluation.architecture.name for evaluation in result.feasible}
    for evaluation in result.pareto:
        assert evaluation.architecture.name in feasible_names


def test_selected_design_uses_sharing(explorer):
    """With mult-heavy kernels the knee point is an RS/RSP design, not base."""
    result = explorer.explore()
    assert result.selected.parameters.kind in ("rs", "rsp")


def test_constraints_restrict_feasible_set(explorer):
    tight = ExplorationConstraints(max_stall_cycles=0)
    result = explorer.explore(constraints=tight)
    for evaluation in result.feasible:
        assert evaluation.total_stall_cycles == 0


def test_execution_time_ratio_constraint(explorer):
    # Disallow any slowdown at all: designs slower than the base are rejected.
    constrained = explorer.explore(
        constraints=ExplorationConstraints(max_execution_time_ratio=1.0)
    )
    base_time = constrained.base.total_execution_time_ns
    for evaluation in constrained.feasible:
        assert evaluation.total_execution_time_ns <= base_time * 1.0 + 1e-9


def test_by_name_lookup(explorer):
    result = explorer.explore()
    base_evaluation = result.by_name("Base")
    assert base_evaluation.parameters.kind == "base"
    with pytest.raises(ExplorationError):
        result.by_name("nonexistent")


def test_summary_rows_shape(explorer):
    result = explorer.explore()
    rows = result.summary_rows()
    assert len(rows) == len(result.evaluated)
    assert all(len(row) == 9 for row in rows)
    selected_flags = [row[-1] for row in rows]
    assert sum(1 for flag in selected_flags if flag) == 1


def test_explicit_candidates_only(explorer):
    candidates = [paper_parameters(design, pipelined=True) for design in range(1, 5)]
    result = explorer.explore(candidates)
    assert len(result.evaluated) == 4
    assert all(evaluation.parameters.kind == "rsp" for evaluation in result.evaluated)
