"""Tests and properties for the Pareto-front utilities."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pareto import dominates, knee_point, pareto_front, pareto_front_vectors


def test_dominates_basic():
    assert dominates((1, 1), (2, 2))
    assert dominates((1, 2), (1, 3))
    assert not dominates((1, 1), (1, 1))
    assert not dominates((1, 3), (2, 2))


def test_dominates_length_mismatch():
    with pytest.raises(ValueError):
        dominates((1,), (1, 2))


def test_pareto_front_vectors_simple():
    vectors = [(1, 4), (2, 2), (4, 1), (3, 3), (5, 5)]
    front = pareto_front_vectors(vectors)
    assert front == [0, 1, 2]


def test_pareto_front_preserves_order_and_objects():
    items = [{"a": 1, "b": 4}, {"a": 2, "b": 2}, {"a": 3, "b": 3}]
    front = pareto_front(items, objectives=(lambda item: item["a"], lambda item: item["b"]))
    assert front == [items[0], items[1]]


def test_pareto_front_requires_objectives():
    with pytest.raises(ValueError):
        pareto_front([1, 2], objectives=())


def test_knee_point_balances_objectives():
    items = [(0.0, 10.0), (5.0, 5.0), (10.0, 0.0)]
    knee = knee_point(items, objectives=(lambda item: item[0], lambda item: item[1]))
    assert knee == (5.0, 5.0)


def test_knee_point_empty_rejected():
    with pytest.raises(ValueError):
        knee_point([], objectives=(lambda item: item,))


def test_knee_point_single_item():
    assert knee_point([(3, 4)], objectives=(lambda item: item[0], lambda item: item[1])) == (3, 4)


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------
points = st.lists(
    st.tuples(st.integers(0, 50), st.integers(0, 50)), min_size=1, max_size=30
)


@given(points)
@settings(max_examples=60, deadline=None)
def test_front_members_are_mutually_non_dominated(values):
    front = pareto_front(values, objectives=(lambda point: point[0], lambda point: point[1]))
    for first in front:
        for second in front:
            assert not dominates(first, second) or first == second


@given(points)
@settings(max_examples=60, deadline=None)
def test_every_point_is_dominated_by_or_on_the_front(values):
    front = pareto_front(values, objectives=(lambda point: point[0], lambda point: point[1]))
    for point in values:
        assert point in front or any(dominates(member, point) for member in front)


@given(points)
@settings(max_examples=60, deadline=None)
def test_knee_point_is_on_the_front(values):
    objectives = (lambda point: point[0], lambda point: point[1])
    assert knee_point(values, objectives) in pareto_front(values, objectives)


def naive_pareto_front_vectors(vectors):
    """The seed's O(n²) all-pairs scan, the reference for equivalence."""
    front = []
    for index, candidate in enumerate(vectors):
        dominated = False
        for other_index, other in enumerate(vectors):
            if other_index != index and dominates(other, candidate):
                dominated = True
                break
        if not dominated:
            front.append(index)
    return front


@given(points)
@settings(max_examples=120, deadline=None)
def test_front_vectors_equivalent_to_naive_scan(values):
    """The sweep-based implementation matches the naive scan exactly."""
    assert pareto_front_vectors(values) == naive_pareto_front_vectors(values)


@given(
    st.lists(
        st.tuples(st.integers(0, 10), st.integers(0, 10), st.integers(0, 10)),
        min_size=0,
        max_size=25,
    )
)
@settings(max_examples=80, deadline=None)
def test_front_vectors_equivalent_to_naive_scan_3d(values):
    """Equivalence also holds beyond the two-objective fast path."""
    assert pareto_front_vectors(values) == naive_pareto_front_vectors(values)


def test_front_vectors_keeps_duplicate_optima():
    assert pareto_front_vectors([(1, 1), (2, 2), (1, 1)]) == [0, 2]
