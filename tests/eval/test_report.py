"""Tests for the full experiment report builder.

Building the report maps every kernel on every architecture; it is the
heaviest test in the suite, so it is built once per module and shared.
"""

from __future__ import annotations

import pytest

from repro.eval.report import build_report, compute_headline_claims, report_to_markdown
from repro.mapping import RSPMapper


@pytest.fixture(scope="module")
def report():
    return build_report(mapper=RSPMapper(), include_exploration=True)


def test_report_contains_all_tables(report):
    assert len(report.table1) == 5
    assert len(report.table2) == 9
    assert len(report.table3) == 9
    assert len(report.table4.kernels) == 5
    assert len(report.table5.kernels) == 4
    assert report.exploration is not None


def test_headline_claims_within_paper_ballpark(report):
    headline = report.headline
    # Area reduction: paper claims up to 42.8%; the analytical model lands
    # within ten percentage points of that.
    assert abs(headline.max_area_reduction_percent - 42.8) < 10.0
    # Delay reduction: paper claims up to 34.69%.
    assert abs(headline.max_delay_reduction_percent - 34.69) < 8.0
    # Performance improvement: paper claims up to 35.7%.
    assert abs(headline.max_performance_improvement_percent - 35.7) < 10.0


def test_headline_recomputation_matches_report(report):
    recomputed = compute_headline_claims(report.table2, report.table4, report.table5)
    assert recomputed.max_area_reduction_percent == report.headline.max_area_reduction_percent
    assert recomputed.max_delay_reduction_percent == report.headline.max_delay_reduction_percent


def test_sad_gets_the_best_performance_improvement(report):
    """Paper Section 5.3: the speedup is largest for SAD (no multiplications)."""
    best_by_kernel = {}
    for table in (report.table4, report.table5):
        for kernel in table.kernels:
            best_by_kernel[kernel] = table.best_delay_reduction(kernel).delay_reduction
    assert max(best_by_kernel, key=lambda name: best_by_kernel[name]) == "SAD"


def test_rsp2_supports_every_kernel_without_stall(report):
    """Paper: 'RSP Arch#2 supports all of the selected kernels without stall'.

    Our 2D-FDCT generator packs multiplications more densely than the
    paper's mapping, so RSP#2 keeps a few residual stall cycles there; the deviation is documented in
    EXPERIMENTS.md.  Every other kernel must be stall-free, and even for
    2D-FDCT the stalls must stay well below the RS#2 figure.
    """
    for table in (report.table4, report.table5):
        for kernel in table.kernels:
            stalls = table.record(kernel, "RSP#2").stalls
            if kernel == "2D-FDCT":
                assert stalls <= 5
                assert stalls <= table.record(kernel, "RS#2").stalls
            else:
                assert stalls == 0, kernel


def test_rs1_stalls_on_multiplication_heavy_kernels(report):
    """RS#1 (one multiplier per row) stalls on the mult-heavy kernels."""
    stalled = [
        kernel
        for table in (report.table4, report.table5)
        for kernel in table.kernels
        if table.record(kernel, "RS#1").stalls
    ]
    assert "State" in stalled or "Hydro" in stalled
    assert "2D-FDCT" in stalled
    assert "SAD" not in stalled


def test_exploration_selects_a_sharing_design(report):
    selected = report.exploration.selected
    assert selected is not None
    assert selected.parameters.kind in ("rs", "rsp")


def test_markdown_rendering_contains_every_section(report):
    text = report_to_markdown(report)
    for heading in ("Table 1", "Table 2", "Table 3", "Table 4", "Table 5", "Headline", "exploration"):
        assert heading in text
    assert "RSP#2" in text
    assert "| Kernel |" in text
