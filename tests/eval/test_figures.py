"""Tests for the ASCII figure renderers."""

from __future__ import annotations

import pytest

from repro.arch import base_architecture, rs_architecture, rsp_architecture
from repro.eval.figures import (
    render_exploration_flow,
    render_pareto_plot,
    render_schedule_figure,
    render_sharing_topology,
)
from repro.kernels import matrix_multiplication_column
from repro.mapping.loop_pipelining import LoopPipeliningScheduler


@pytest.fixture(scope="module")
def matmul_schedules():
    kernel = matrix_multiplication_column(order=4)
    base = base_architecture(4, 4)
    rsp = rsp_architecture(1, rows=4, cols=4)
    base_schedule = LoopPipeliningScheduler(base).schedule(kernel.build(), kernel_name=kernel.name)
    rsp_schedule = LoopPipeliningScheduler(rsp).schedule(kernel.build(), kernel_name=kernel.name)
    return base_schedule, rsp_schedule


def test_schedule_figure_has_one_row_per_array_column(matmul_schedules):
    base_schedule, _ = matmul_schedules
    text = render_schedule_figure(base_schedule)
    lines = text.splitlines()
    column_lines = [line for line in lines if line.startswith("col#")]
    assert len(column_lines) == 4
    # Figure 2 layout: col#4 on top, col#1 at the bottom.
    assert column_lines[0].startswith("col#4")
    assert column_lines[-1].startswith("col#1")
    assert "Ld" in text and "*" in text


def test_pipelined_schedule_shows_stage_labels(matmul_schedules):
    _, rsp_schedule = matmul_schedules
    text = render_schedule_figure(rsp_schedule)
    # Two-stage multiplications appear as 1* (first stage) and 2* (second stage).
    assert "1*" in text
    assert "2*" in text


def test_schedule_figure_cycle_truncation(matmul_schedules):
    base_schedule, _ = matmul_schedules
    text = render_schedule_figure(base_schedule, max_cycles=3)
    header = text.splitlines()[1]
    assert " 3" in header and " 4" not in header


def test_topology_rendering_base_and_shared():
    base_text = render_sharing_topology(base_architecture())
    assert "no sharing" in base_text
    rs_text = render_sharing_topology(rs_architecture(3))
    assert "2 per row" in rs_text and "1 per column" in rs_text
    assert "24 total" in rs_text
    rsp_text = render_sharing_topology(rsp_architecture(2))
    assert "2-stage pipelined" in rsp_text


def test_exploration_flow_lists_all_steps():
    text = render_exploration_flow()
    assert "Profiling" in text
    assert "RSP exploration" in text
    assert "RSP mapping" in text


def test_pareto_plot_markers():
    from repro.core import RSPDesignSpaceExplorer
    from repro.core.stalls import ScheduleProfile

    profiles = {"k": ScheduleProfile(kernel="k", length=10, critical_issues=(), rows=8, cols=8)}
    result = RSPDesignSpaceExplorer(profiles).explore()
    text = render_pareto_plot(result.evaluated, result.pareto)
    assert "P" in text
    assert "execution time" in text
    assert render_pareto_plot([], []) == "(no design points)"
