"""Tests for the evaluation metrics."""

from __future__ import annotations

import pytest

from repro.arch import base_architecture, rsp_architecture
from repro.errors import ReproError
from repro.eval.metrics import (
    PerformanceRecord,
    delay_reduction_percent,
    execution_time_ns,
    performance_record,
    speedup,
)


def test_execution_time_product():
    assert execution_time_ns(15, 26.0) == pytest.approx(390.0)


def test_execution_time_input_validation():
    with pytest.raises(ReproError):
        execution_time_ns(-1, 26.0)
    with pytest.raises(ReproError):
        execution_time_ns(10, 0.0)


def test_delay_reduction_sign_convention():
    assert delay_reduction_percent(100.0, 80.0) == pytest.approx(20.0)
    assert delay_reduction_percent(100.0, 120.0) == pytest.approx(-20.0)
    with pytest.raises(ReproError):
        delay_reduction_percent(0.0, 10.0)


def test_speedup():
    assert speedup(200.0, 100.0) == pytest.approx(2.0)
    with pytest.raises(ReproError):
        speedup(100.0, 0.0)


def test_performance_record_from_mapping(mapper, mvm_kernel, timing_model):
    result = mapper.map_kernel(mvm_kernel, rsp_architecture(2))
    record = performance_record(result, timing_model)
    assert isinstance(record, PerformanceRecord)
    assert record.kernel == "MVM"
    assert record.architecture == "RSP#2"
    assert record.cycles == result.cycles
    assert record.execution_time == pytest.approx(record.cycles * record.critical_path_ns)
    # RSP#2's clock is fast enough that MVM improves despite extra cycles.
    assert record.delay_reduction > 0
    assert record.stalls == result.stall_cycles


def test_performance_record_base_has_no_stall_entry(mapper, mvm_kernel, timing_model):
    result = mapper.map_kernel(mvm_kernel, base_architecture())
    record = performance_record(result, timing_model)
    assert record.stalls is None
    assert record.delay_reduction == pytest.approx(0.0)
    assert not record.is_stalled


def test_performance_record_with_explicit_base_time(mapper, mvm_kernel, timing_model):
    result = mapper.map_kernel(mvm_kernel, rsp_architecture(2))
    record = performance_record(result, timing_model, base_execution_time=1_000_000.0)
    assert record.delay_reduction > 99.0
