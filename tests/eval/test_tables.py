"""Tests for the paper-table regeneration helpers."""

from __future__ import annotations

import pytest

from repro.arch import base_architecture, rs_architecture, rsp_architecture
from repro.eval.tables import (
    format_performance_table,
    format_table1,
    format_table2,
    format_table3,
    performance_table,
    table1_pe_components,
    table2_architectures,
    table3_kernels,
)
from repro.kernels import get_kernel


def test_table1_rows_and_ratios():
    rows = table1_pe_components()
    assert [row.component for row in rows] == [
        "PE", "Multiplexer", "ALU", "Array multiplier", "Shift logic",
    ]
    pe_row = rows[0]
    assert pe_row.area_ratio_percent == pytest.approx(100.0)
    multiplier_row = next(row for row in rows if row.component == "Array multiplier")
    # The multiplier dominates both area and delay — the paper's bold cells.
    assert multiplier_row.area_ratio_percent > 40.0
    assert multiplier_row.delay_ratio_percent > 70.0
    assert multiplier_row.paper_area_slices == 416


def test_format_table1_contains_all_components():
    text = format_table1(table1_pe_components())
    assert "Array multiplier" in text
    assert "Table 1" in text


def test_table2_estimates_have_paper_reference(surrogate):
    estimates = table2_architectures(surrogate)
    assert len(estimates) == 9
    assert all(estimate.paper is not None for estimate in estimates)
    text = format_table2(estimates)
    assert "RSP#4" in text and "Area R(%)" in text


@pytest.fixture(scope="module")
def shared_mapper():
    from repro.mapping import RSPMapper

    return RSPMapper()


def test_table3_rows_cover_all_kernels(shared_mapper):
    rows = table3_kernels(mapper=shared_mapper)
    assert [row.kernel for row in rows] == [
        "Hydro", "ICCG", "Tri-diagonal", "Inner product", "State",
        "2D-FDCT", "SAD", "MVM", "FFT",
    ]
    by_name = {row.kernel: row for row in rows}
    assert by_name["SAD"].max_multiplications == 0
    assert by_name["Inner product"].max_multiplications >= 1
    assert by_name["MVM"].paper_max_multiplications == 8
    text = format_table3(rows)
    assert "Mult No" in text


def test_performance_table_structure(shared_mapper, timing_model):
    kernels = [get_kernel("MVM"), get_kernel("ICCG")]
    architectures = [base_architecture(), rs_architecture(2), rsp_architecture(2)]
    table = performance_table(
        kernels, mapper=shared_mapper, timing_model=timing_model, architectures=architectures
    )
    assert table.kernels == ["MVM", "ICCG"]
    assert table.architectures == ["Base", "RS#2", "RSP#2"]
    record = table.record("MVM", "RSP#2")
    assert record.cycles >= table.record("MVM", "Base").cycles
    base_record = table.record("MVM", "Base")
    assert base_record.delay_reduction == pytest.approx(0.0)
    assert base_record.stalls is None
    best = table.best_delay_reduction("MVM")
    assert best.architecture in ("RS#2", "RSP#2")
    text = format_performance_table(table)
    assert "MVM" in text and "ET(ns)" in text
