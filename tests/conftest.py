"""Shared fixtures for the test suite.

Expensive artefacts (the mapper with its base-schedule cache, the mapped
paper kernels) are session-scoped so the many tests that need a schedule
do not re-run the scheduler over and over.
"""

from __future__ import annotations

import pytest

from repro.arch import (
    base_architecture,
    default_component_library,
    paper_architectures,
    rs_architecture,
    rsp_architecture,
)
from repro.core import HardwareCostModel, TimingModel
from repro.kernels import get_kernel, matrix_multiplication
from repro.mapping import RSPMapper
from repro.synthesis import SynthesisSurrogate


@pytest.fixture(scope="session")
def library():
    """The paper-calibrated component library."""
    return default_component_library()


@pytest.fixture(scope="session")
def cost_model(library):
    return HardwareCostModel(library)


@pytest.fixture(scope="session")
def timing_model(library):
    return TimingModel(library)


@pytest.fixture(scope="session")
def surrogate(library):
    return SynthesisSurrogate(library)


@pytest.fixture(scope="session")
def base_arch():
    return base_architecture()


@pytest.fixture(scope="session")
def all_paper_archs():
    return paper_architectures()


@pytest.fixture(scope="session")
def rs2_arch():
    return rs_architecture(2)


@pytest.fixture(scope="session")
def rsp2_arch():
    return rsp_architecture(2)


@pytest.fixture(scope="session")
def mapper():
    """A shared mapper whose base-schedule cache persists across tests."""
    return RSPMapper()


@pytest.fixture(scope="session")
def matmul4_kernel():
    return matrix_multiplication(order=4, constant=1)


@pytest.fixture(scope="session")
def mvm_kernel():
    return get_kernel("MVM")


@pytest.fixture(scope="session")
def hydro_kernel():
    return get_kernel("Hydro")


@pytest.fixture(scope="session")
def mvm_base_result(mapper, mvm_kernel, base_arch):
    """MVM mapped on the base architecture (used by many mapping/sim tests)."""
    return mapper.map_kernel(mvm_kernel, base_arch)
