"""TieredBackend: read-through front, write-behind flushing, server traffic."""

from __future__ import annotations

import hashlib
import time

import pytest

from repro.service import StoreServer
from repro.store import (
    MemoryBackend,
    PickleDirBackend,
    RemoteBackend,
    StoreJanitor,
    TieredBackend,
)


def hex_key(index: int) -> str:
    return hashlib.sha256(str(index).encode()).hexdigest()


@pytest.fixture()
def server(tmp_path):
    with StoreServer(PickleDirBackend(tmp_path / "store")) as live:
        yield live


# ----------------------------------------------------------------------
# Over a local backend (deterministic, no HTTP)
# ----------------------------------------------------------------------
def test_write_behind_is_deferred_until_flush():
    slow = MemoryBackend()
    tier = TieredBackend(slow, auto_flush=False)
    tier.put("ns", hex_key(1), {"v": 1})
    assert tier.get("ns", hex_key(1)) == (True, {"v": 1})  # front serves it
    assert not slow.contains("ns", hex_key(1))  # slow tier not written yet
    assert tier.pending == 1

    tier.flush()
    assert tier.pending == 0
    assert slow.get("ns", hex_key(1)) == (True, {"v": 1})
    assert tier.flush_batches == 1 and tier.flushed_records == 1


def test_read_through_populates_the_front():
    slow = MemoryBackend()
    slow.put("ns", hex_key(1), {"v": 1})
    tier = TieredBackend(slow, auto_flush=False)

    assert tier.get("ns", hex_key(1)) == (True, {"v": 1})
    assert tier.front_misses == 1
    slow_hits = slow.counters.hits
    assert tier.get("ns", hex_key(1)) == (True, {"v": 1})
    assert tier.front_hits == 1
    assert slow.counters.hits == slow_hits  # second read never reached the slow tier


def test_get_many_splits_front_hits_from_backend_fetches():
    slow = MemoryBackend()
    for index in range(4):
        slow.put("ns", hex_key(index), {"v": index})
    tier = TieredBackend(slow, auto_flush=False)
    tier.put("ns", hex_key(9), {"v": 9})

    keys = [hex_key(index) for index in (0, 1, 9, 42)]
    found = tier.get_many("ns", keys)
    assert found == {hex_key(0): {"v": 0}, hex_key(1): {"v": 1}, hex_key(9): {"v": 9}}
    assert tier.front_hits == 1  # the pending write served from the front
    # All four backend entries readable once the front is warm.
    assert len(tier.get_many("ns", [hex_key(index) for index in range(4)])) == 4


def test_bounded_queue_flushes_inline():
    slow = MemoryBackend()
    tier = TieredBackend(slow, auto_flush=False, max_queue=4, batch_size=2)
    for index in range(6):
        tier.put("ns", hex_key(index), {"v": index})
    assert tier.inline_flushes >= 1
    assert slow.stats().entries >= 1  # the overflow drained synchronously
    tier.flush()
    assert slow.stats().entries == 6


def test_background_flusher_drains_without_explicit_flush():
    slow = MemoryBackend()
    tier = TieredBackend(slow, flush_interval=0.01)
    for index in range(5):
        tier.put("ns", hex_key(index), {"v": index})
    deadline = time.time() + 5.0
    while tier.pending and time.time() < deadline:
        time.sleep(0.01)
    assert tier.pending == 0
    assert slow.stats().entries == 5
    tier.close()


def test_delete_cancels_pending_writes():
    slow = MemoryBackend()
    tier = TieredBackend(slow, auto_flush=False)
    tier.put("ns", hex_key(1), {"v": 1})
    assert tier.delete("ns", hex_key(1))
    tier.flush()
    assert not slow.contains("ns", hex_key(1)), "flush resurrected a deleted key"
    assert not tier.contains("ns", hex_key(1))


def test_close_drains_and_is_idempotent():
    slow = MemoryBackend()
    tier = TieredBackend(slow, flush_interval=60.0)  # flusher effectively idle
    tier.put("ns", hex_key(1), {"v": 1})
    tier.close()
    assert slow.contains("ns", hex_key(1))
    tier.close()


def test_scan_and_compact_flush_first():
    slow = MemoryBackend()
    tier = TieredBackend(slow, auto_flush=False)
    tier.put("ns", hex_key(1), {"v": 1})
    assert {entry.key for entry in tier.scan()} == {hex_key(1)}
    tier.put("ns", hex_key(2), {"v": 2})
    report = tier.compact()
    assert report.entries_kept == 2
    assert tier.stats().backend == "tiered(memory)"
    assert len(tier) == 2


def test_flush_errors_are_counted_not_raised(server):
    remote = RemoteBackend(server.url, strict=True)
    tier = TieredBackend(remote, auto_flush=False)
    tier.put("ns", hex_key(1), {"v": 1})
    server.close()  # strict remote now raises on flush
    tier.flush()
    assert tier.flush_errors == 1
    assert tier.pending == 0  # the batch is dropped, not retried forever
    remote.close()


# ----------------------------------------------------------------------
# Over a live store service
# ----------------------------------------------------------------------
def test_repeat_reads_never_recontact_the_server(server):
    """The acceptance criterion: request counters prove front-only reads."""
    seed = RemoteBackend(server.url, strict=True)
    seed.put("stage", hex_key(1), {"v": 1})
    seed.close()

    tier = TieredBackend(RemoteBackend(server.url, strict=True), auto_flush=False)
    assert tier.get("stage", hex_key(1)) == (True, {"v": 1})  # one server GET
    requests_after_first = dict(server.service.requests)
    for _ in range(5):
        assert tier.get("stage", hex_key(1)) == (True, {"v": 1})
    assert server.service.requests == requests_after_first
    assert tier.front_hits == 5
    tier.close()


def test_tiered_janitor_flushes_then_sweeps_remotely(server):
    tier = TieredBackend(RemoteBackend(server.url, strict=True), auto_flush=False)
    for index in range(3):
        tier.put("ns", hex_key(index), {"v": index})
    report = StoreJanitor(tier, max_age_seconds=0.0).sweep()
    assert report.scanned == 3  # pending writes reached the server first
    assert report.evicted == 3
    tier.close()


def test_constructor_validation():
    with pytest.raises(ValueError, match="max_queue"):
        TieredBackend(MemoryBackend(), max_queue=0)
    with pytest.raises(ValueError, match="batch_size"):
        TieredBackend(MemoryBackend(), batch_size=0)


def test_delete_waits_out_an_in_flight_flush_batch():
    """A batch the flusher already took must not resurrect a deleted key."""
    import threading

    class GatedBackend(MemoryBackend):
        def __init__(self):
            super().__init__()
            self.gate = threading.Event()

        def put_many(self, namespace, records):
            self.gate.wait(timeout=5.0)
            return super().put_many(namespace, records)

    slow = GatedBackend()
    tier = TieredBackend(slow, flush_interval=0.005)
    tier.put("ns", hex_key(1), {"v": 1})
    deadline = time.time() + 5.0
    while tier._in_flight == 0 and time.time() < deadline:
        time.sleep(0.002)  # wait for the flusher to take the batch
    assert tier._in_flight == 1

    threading.Timer(0.1, slow.gate.set).start()
    assert tier.delete("ns", hex_key(1))  # must block past the in-flight write
    assert not slow.contains("ns", hex_key(1)), "in-flight flush resurrected the key"
    assert not tier.contains("ns", hex_key(1))
    tier.close()


def test_close_deadline_strands_queued_records_loudly():
    """A wedged slow tier cannot hold close() hostage: at the drain
    deadline the still-queued records are counted into dropped_records
    and reported with a RuntimeWarning — never dropped silently."""
    import threading
    import warnings

    class WedgedBackend(MemoryBackend):
        def __init__(self):
            super().__init__()
            self.entered = threading.Event()
            self.release = threading.Event()

        def put_many(self, namespace, records):
            self.entered.set()
            assert self.release.wait(timeout=30.0), "test never released the gate"
            return super().put_many(namespace, records)

    slow = WedgedBackend()
    tier = TieredBackend(slow, batch_size=1, auto_flush=False)
    for index in range(3):
        tier.put("ns", hex_key(index), {"v": index})

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        closer = threading.Thread(target=lambda: tier.close(timeout=0.2))
        closer.start()
        assert slow.entered.wait(timeout=5.0)  # close is writing batch 1
        time.sleep(0.3)  # let the drain deadline expire mid-write
        slow.release.set()
        closer.join(timeout=10.0)
        assert not closer.is_alive()

    assert slow.contains("ns", hex_key(0))  # the in-flight batch landed
    assert tier.dropped_records == 2  # the queued ones were stranded
    messages = [str(w.message) for w in caught if w.category is RuntimeWarning]
    assert any("2 queued record(s) dropped" in message for message in messages)
    # The stranded values are still recomputable and still served locally.
    assert tier.front.contains("ns", hex_key(2))
