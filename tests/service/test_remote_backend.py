"""RemoteBackend: the store protocol over HTTP, retries, degraded mode."""

from __future__ import annotations

import hashlib
import socket

import pytest

from repro.service import StoreServer, open_store_backend
from repro.store import (
    PickleDirBackend,
    RemoteBackend,
    ShardedJsonlBackend,
    StoreJanitor,
    StoreServiceError,
    TieredBackend,
)


def hex_key(index: int) -> str:
    return hashlib.sha256(str(index).encode()).hexdigest()


@pytest.fixture()
def server(tmp_path):
    with StoreServer(PickleDirBackend(tmp_path / "store")) as live:
        yield live


@pytest.fixture()
def client(server):
    backend = RemoteBackend(server.url, strict=True)
    yield backend
    backend.close()


# ----------------------------------------------------------------------
# Protocol over the wire
# ----------------------------------------------------------------------
def test_full_protocol_round_trip(client):
    key = hex_key(1)
    assert client.get("ns", key) == (False, None)
    assert not client.contains("ns", key)

    client.put("ns", key, {"v": 7})
    assert client.contains("ns", key)
    assert client.get("ns", key) == (True, {"v": 7})
    assert client.counters.hits == 1 and client.counters.misses == 1

    assert client.delete("ns", key)
    assert not client.delete("ns", key)
    assert not client.contains("ns", key)


def test_arbitrary_picklables_survive(client):
    """Artifacts are structured objects; they travel as opaque pickles."""
    value = {"nested": (1, 2), 3: "int-key", "set": frozenset({"a"})}
    client.put("stage", hex_key(2), value)
    hit, returned = client.get("stage", hex_key(2))
    assert hit and returned == value


def test_batch_round_trip_and_counters(client):
    records = {hex_key(i): {"v": i} for i in range(10)}
    assert client.put_many("batch", records) == 10
    # Re-putting is deduplicated by the server's content-hash semantics.
    assert client.put_many("batch", dict(list(records.items())[:3])) == 0

    found = client.get_many("batch", list(records) + [hex_key(42)])
    assert found == records
    assert client.counters.hits == 10
    assert client.counters.misses == 1
    assert client.get_many("batch", []) == {}


def test_scan_stats_and_len(client):
    for index in range(5):
        client.put("ns", hex_key(index), {"v": index})
    entries = list(client.scan())
    assert len(entries) == 5
    assert {entry.namespace for entry in entries} == {"ns"}
    snapshot = client.stats()
    assert snapshot.backend == "remote"
    assert snapshot.entries == 5
    assert snapshot.stores == 5
    assert len(client) == 5


def test_remote_janitor_single_round_trip(client):
    for index in range(6):
        client.put("ns", hex_key(index), {"v": index})
    requests_before = client.requests
    report = StoreJanitor(client, max_age_seconds=0.0).sweep()
    assert client.requests == requests_before + 1  # one POST /janitor
    assert report.scanned == 6 and report.evicted == 6
    assert len(list(client.scan())) == 0


def test_compact_delegates_to_the_server(client):
    client.put("ns", hex_key(1), {"v": 1})
    report = client.compact()
    assert report.entries_kept == 1


def test_open_store_backend_helper(server):
    remote = open_store_backend(server.url)
    assert isinstance(remote, RemoteBackend)
    tiered = open_store_backend(server.url, tiered=True)
    assert isinstance(tiered, TieredBackend)
    tiered.close()
    remote.close()


def test_rejects_non_http_urls():
    with pytest.raises(ValueError, match="http"):
        RemoteBackend("ftp://somewhere")
    with pytest.raises(ValueError, match="http"):
        RemoteBackend("not-a-url")


# ----------------------------------------------------------------------
# Retry / backoff
# ----------------------------------------------------------------------
def _free_port() -> int:
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def test_strict_client_retries_with_backoff_then_raises():
    sleeps = []
    client = RemoteBackend(
        f"http://127.0.0.1:{_free_port()}",
        strict=True,
        retries=3,
        backoff=0.01,
        sleep=sleeps.append,
    )
    with pytest.raises(StoreServiceError, match="after 4 attempts"):
        client.get("ns", hex_key(1))
    assert sleeps == [0.01, 0.02, 0.04]  # exponential backoff
    assert client.transport_retries == 3


def test_stale_keepalive_connection_is_reopened(tmp_path):
    """A server restart must not poison the client's persistent socket."""
    backend = PickleDirBackend(tmp_path / "store")
    first = StoreServer(backend).start()
    port = first.port
    client = RemoteBackend(first.url, strict=True, backoff=0.0)
    client.put("ns", hex_key(1), {"v": 1})
    first.close()

    second = StoreServer(backend, port=port).start()
    try:
        assert client.get("ns", hex_key(1)) == (True, {"v": 1})
    finally:
        client.close()
        second.close()


# ----------------------------------------------------------------------
# Degraded (offline) mode
# ----------------------------------------------------------------------
def test_offline_degradation_and_recovery(tmp_path):
    clock = [0.0]
    url = f"http://127.0.0.1:{_free_port()}"
    client = RemoteBackend(
        url,
        retries=1,
        backoff=0.0,
        offline_grace=10.0,
        sleep=lambda _: None,
        clock=lambda: clock[0],
    )
    # Nothing is listening: every operation degrades instead of raising.
    assert client.get("ns", hex_key(1)) == (False, None)
    assert client.offline
    client.put("ns", hex_key(1), {"v": 1})
    assert client.dropped_puts == 1
    assert client.put_many("ns", {hex_key(2): {"v": 2}}) == 0
    assert client.dropped_puts == 2
    assert client.get_many("ns", [hex_key(3)]) == {}
    assert list(client.scan()) == []
    assert not client.contains("ns", hex_key(1))
    assert not client.delete("ns", hex_key(1))
    assert client.sweep_remote(0.0).scanned == 0
    assert client.stats().entries == 0
    # Inside the grace window the transport is never touched again.
    retries_during_window = client.transport_retries
    client.get("ns", hex_key(4))
    assert client.transport_retries == retries_during_window
    assert client.offline_trips == 1

    # Grace expires, the server appears: service resumes transparently.
    clock[0] = 11.0
    parts = url.rsplit(":", 1)
    with StoreServer(PickleDirBackend(tmp_path / "store"), port=int(parts[1])):
        client.put("ns", hex_key(5), {"v": 5})
        assert client.get("ns", hex_key(5)) == (True, {"v": 5})
        assert not client.offline
    client.close()


def test_non_strict_client_survives_server_rejections(tmp_path):
    """A records-only server rejecting binary payloads must not kill a
    lenient worker: the put degrades to a counted drop."""
    with StoreServer(ShardedJsonlBackend(tmp_path / "records.jsonl")) as live:
        client = RemoteBackend(live.url)  # non-strict
        client.put("stage", hex_key(1), object())  # pickled -> 415
        assert client.dropped_puts == 1
        assert client.put_many("stage", {hex_key(2): object()}) == 0
        assert client.dropped_puts == 2
        # JSON records still flow (returned with the JSONL backend's
        # reserved bookkeeping fields added), and strict mode still raises.
        client.put("ns", hex_key(3), {"v": 3})
        hit, record = client.get("ns", hex_key(3))
        assert hit and record["v"] == 3
        client.close()
        strict = RemoteBackend(live.url, strict=True)
        with pytest.raises(StoreServiceError, match="rejected PUT"):
            strict.put("stage", hex_key(4), object())
        strict.close()


def test_head_errors_do_not_desynchronise_keepalive(server):
    """HEAD responses must stay bodyless even on error paths."""
    import http.client

    connection = http.client.HTTPConnection(server.host, server.port, timeout=10)
    try:
        for _ in range(2):  # repeated to prove the socket stays in sync
            connection.request("HEAD", "/stats")  # 405 via the error path
            response = connection.getresponse()
            assert response.read() == b""
            assert response.status == 405
            connection.request("GET", "/healthz")
            response = connection.getresponse()
            assert response.status == 200
            assert b"ok" in response.read()
    finally:
        connection.close()


def test_offline_trips_count_one_per_outage_under_contention():
    """The offline window is checked and tripped under one lock: a stampede
    of threads hitting a dead server opens exactly one degraded window
    (and a second outage after the grace expires opens exactly one more)."""
    import threading

    clock = [0.0]
    client = RemoteBackend(
        f"http://127.0.0.1:{_free_port()}",
        retries=1,
        backoff=0.0,
        offline_grace=10.0,
        sleep=lambda _: None,
        clock=lambda: clock[0],
    )

    def stampede():
        barrier = threading.Barrier(8)

        def hammer(index):
            barrier.wait(timeout=10.0)
            for attempt in range(5):
                client.get("ns", hex_key(index * 10 + attempt))

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)

    stampede()
    assert client.offline
    assert client.offline_trips == 1

    clock[0] = 11.0  # grace expired; the server is still dead
    stampede()
    assert client.offline_trips == 2
    client.close()
