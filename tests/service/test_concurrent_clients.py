"""Concurrency battery: many clients hammering one store service.

Several threads *and* two forked OS processes issue mixed batch writes,
batch reads and janitor passes against a single :class:`StoreServer`.
The service contract under that load mirrors the local stores':

* zero lost records — every record any client stored is readable
  afterwards, by a fresh client and by a fresh backend over the same
  directory,
* zero torn records — the JSONL lines behind a records server parse
  cleanly after arbitrary interleaving with compaction.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import threading

import pytest

from repro.service import StoreServer
from repro.store import RemoteBackend, ShardedJsonlBackend

WRITERS = 6
PROCESS_WRITERS = 2
RECORDS_PER_WRITER = 40
SHARDS = 4

mp = multiprocessing.get_context("fork")

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable",
)


def writer_key(writer: int, index: int) -> str:
    return hashlib.sha256(f"client-{writer}-record-{index}".encode()).hexdigest()


def hammer(url: str, writer: int, batch: int = 8) -> None:
    """One client's mixed workload: mput waves, mget reads, janitor passes."""
    client = RemoteBackend(url, strict=True)
    try:
        keys = [writer_key(writer, index) for index in range(RECORDS_PER_WRITER)]
        for start in range(0, RECORDS_PER_WRITER, batch):
            wave = keys[start : start + batch]
            client.put_many(
                "", {key: {"writer": writer, "index": keys.index(key)} for key in wave}
            )
            found = client.get_many("", wave)
            assert set(found) == set(wave), f"writer {writer} lost records mid-run"
            if start % (batch * 2) == 0:
                # Compaction-only janitor passes race the other writers.
                client.sweep_remote(None, compact=True)
        assert set(client.get_many("", keys)) == set(keys)
    finally:
        client.close()


def test_threads_and_processes_hammering_one_server(tmp_path):
    path = tmp_path / "records.jsonl"
    with StoreServer(ShardedJsonlBackend(path, num_shards=SHARDS)) as server:
        threads = [
            threading.Thread(target=hammer, args=(server.url, writer))
            for writer in range(WRITERS)
        ]
        processes = [
            mp.Process(target=hammer, args=(server.url, WRITERS + writer))
            for writer in range(PROCESS_WRITERS)
        ]
        for worker in threads + processes:
            worker.start()
        for thread in threads:
            thread.join(timeout=120)
            assert not thread.is_alive()
        for process in processes:
            process.join(timeout=120)
            assert process.exitcode == 0

        # Every record every client wrote is readable by a fresh client.
        checker = RemoteBackend(server.url, strict=True)
        all_keys = [
            writer_key(writer, index)
            for writer in range(WRITERS + PROCESS_WRITERS)
            for index in range(RECORDS_PER_WRITER)
        ]
        found = checker.get_many("", all_keys)
        assert len(found) == len(all_keys), "the service lost records under load"
        for key in all_keys:
            assert writer_key(found[key]["writer"], found[key]["index"]) == key
        checker.close()
        assert server.service.backend.corrupt_lines == 0

    # And by a fresh backend straight off the directory: nothing torn.
    reopened = ShardedJsonlBackend(path, num_shards=SHARDS)
    assert reopened.corrupt_lines == 0, "a torn line reached the shard files"
    assert len(reopened) == len(all_keys)
