"""Endpoint coverage for the HTTP store service.

Raw ``http.client`` requests against a live :class:`StoreServer` — no
RemoteBackend in the loop, so what is pinned down here is the wire
contract itself: routes, status codes, content types, ETags and the
error mapping.
"""

from __future__ import annotations

import hashlib
import http.client
import json

import pytest

from repro.service import StoreServer
from repro.store import MemoryBackend, PickleDirBackend, ShardedJsonlBackend


def hex_key(index: int) -> str:
    return hashlib.sha256(str(index).encode()).hexdigest()


@pytest.fixture()
def server(tmp_path):
    with StoreServer(PickleDirBackend(tmp_path / "store")) as live:
        yield live


@pytest.fixture()
def http_request(server):
    connection = http.client.HTTPConnection(server.host, server.port, timeout=10)

    def request(method, path, body=None, headers=None):
        connection.request(method, path, body=body, headers=headers or {})
        response = connection.getresponse()
        payload = response.read()
        return response.status, dict(response.getheaders()), payload

    yield request
    connection.close()


# ----------------------------------------------------------------------
# Item routes
# ----------------------------------------------------------------------
def test_put_get_roundtrip_json(http_request):
    key = hex_key(1)
    status, headers, _ = http_request(
        "PUT",
        f"/ns/evals/k/{key}",
        body=json.dumps({"v": 41}).encode(),
        headers={"Content-Type": "application/json"},
    )
    assert status == 204
    put_etag = headers["ETag"]

    status, headers, body = http_request("GET", f"/ns/evals/k/{key}")
    assert status == 200
    assert headers["Content-Type"] == "application/json"
    assert json.loads(body) == {"v": 41}
    assert headers["ETag"] == put_etag


def test_put_get_roundtrip_binary_is_opaque(server, http_request):
    """Binary payloads are stored as the exact bytes sent, never unpickled."""
    key = hex_key(2)
    payload = b"\x80\x05definitely-not-valid-pickle"
    status, _, _ = http_request(
        "PUT",
        f"/ns/artifacts/k/{key}",
        body=payload,
        headers={"Content-Type": "application/octet-stream"},
    )
    assert status == 204
    status, headers, body = http_request("GET", f"/ns/artifacts/k/{key}")
    assert status == 200
    assert headers["Content-Type"] == "application/octet-stream"
    assert body == payload


def test_etag_revalidation_returns_304(http_request):
    key = hex_key(3)
    http_request(
        "PUT",
        f"/ns/n/k/{key}",
        body=json.dumps({"a": 1}).encode(),
        headers={"Content-Type": "application/json"},
    )
    _, headers, _ = http_request("GET", f"/ns/n/k/{key}")
    etag = headers["ETag"]
    assert etag.startswith('"') and etag.endswith('"')

    status, headers, body = http_request(
        "GET", f"/ns/n/k/{key}", headers={"If-None-Match": etag}
    )
    assert status == 304
    assert body == b""


def test_head_reports_presence_without_counting(server, http_request):
    key = hex_key(4)
    status, _, _ = http_request("HEAD", f"/ns/n/k/{key}")
    assert status == 404
    http_request(
        "PUT",
        f"/ns/n/k/{key}",
        body=b"{}",
        headers={"Content-Type": "application/json"},
    )
    status, _, _ = http_request("HEAD", f"/ns/n/k/{key}")
    assert status == 200
    # contains is an availability check: no hit/miss was recorded.
    assert server.service.backend.counters.hits == 0
    assert server.service.backend.counters.misses == 0


def test_get_miss_and_delete(http_request):
    key = hex_key(5)
    status, _, body = http_request("GET", f"/ns/n/k/{key}")
    assert status == 404
    assert "error" in json.loads(body)

    http_request(
        "PUT", f"/ns/n/k/{key}", body=b"{}", headers={"Content-Type": "application/json"}
    )
    status, _, _ = http_request("DELETE", f"/ns/n/k/{key}")
    assert status == 204
    status, _, _ = http_request("DELETE", f"/ns/n/k/{key}")
    assert status == 404


def test_empty_namespace_is_addressable(http_request):
    """The evaluation cache's default namespace is the empty string."""
    key = hex_key(6)
    status, _, _ = http_request(
        "PUT", f"/ns//k/{key}", body=b'{"v": 1}', headers={"Content-Type": "application/json"}
    )
    assert status == 204
    status, _, body = http_request("GET", f"/ns//k/{key}")
    assert status == 200 and json.loads(body) == {"v": 1}


# ----------------------------------------------------------------------
# Batch routes
# ----------------------------------------------------------------------
def test_mput_then_mget(http_request):
    records = {hex_key(i): {"ct": "json", "v": {"v": i}} for i in range(8)}
    status, _, body = http_request(
        "POST",
        "/ns/batch/mput",
        body=json.dumps({"records": records}).encode(),
        headers={"Content-Type": "application/json"},
    )
    assert status == 200
    assert json.loads(body)["stored"] == 8

    keys = list(records) + [hex_key(99)]
    status, _, body = http_request(
        "POST",
        "/ns/batch/mget",
        body=json.dumps({"keys": keys}).encode(),
        headers={"Content-Type": "application/json"},
    )
    assert status == 200
    envelope = json.loads(body)
    assert set(envelope["hits"]) == set(records)
    assert envelope["misses"] == [hex_key(99)]
    assert envelope["hits"][hex_key(3)] == {"ct": "json", "v": {"v": 3}}


# ----------------------------------------------------------------------
# Maintenance routes
# ----------------------------------------------------------------------
def test_healthz_and_stats_with_request_counters(http_request):
    status, _, body = http_request("GET", "/healthz")
    assert status == 200
    assert json.loads(body)["status"] == "ok"

    http_request("GET", f"/ns/n/k/{hex_key(1)}")  # one miss
    status, _, body = http_request("GET", "/stats")
    assert status == 200
    document = json.loads(body)
    assert document["requests"]["healthz"] == 1
    assert document["requests"]["get"] == 1
    assert document["backend"]["misses"] == 1
    assert document["uptime_seconds"] >= 0


def test_scan_lists_entries(http_request):
    for index in range(3):
        http_request(
            "PUT",
            f"/ns/a/k/{hex_key(index)}",
            body=b"{}",
            headers={"Content-Type": "application/json"},
        )
    http_request(
        "PUT", f"/ns/b/k/{hex_key(9)}", body=b"{}", headers={"Content-Type": "application/json"}
    )
    status, _, body = http_request("GET", "/scan")
    assert status == 200
    entries = json.loads(body)["entries"]
    assert len(entries) == 4
    status, _, body = http_request("GET", "/scan?ns=a")
    assert {entry["key"] for entry in json.loads(body)["entries"]} == {
        hex_key(index)[:32] for index in range(3)
    }


def test_janitor_gc_and_compaction(http_request):
    for index in range(4):
        http_request(
            "PUT",
            f"/ns/a/k/{hex_key(index)}",
            body=b"{}",
            headers={"Content-Type": "application/json"},
        )
    status, _, body = http_request(
        "POST",
        "/janitor",
        body=json.dumps({"max_age": 0, "compact": True}).encode(),
        headers={"Content-Type": "application/json"},
    )
    assert status == 200
    report = json.loads(body)
    assert report["scanned"] == 4
    assert report["evicted"] == 4
    status, _, body = http_request("GET", "/scan")
    assert json.loads(body)["entries"] == []


# ----------------------------------------------------------------------
# Error mapping
# ----------------------------------------------------------------------
def test_unknown_route_is_404(http_request):
    status, _, body = http_request("GET", "/nope")
    assert status == 404 and "error" in json.loads(body)


def test_wrong_method_is_405(http_request):
    for method, path in (
        ("POST", f"/ns/n/k/{hex_key(1)}"),
        ("GET", "/ns/n/mget"),
        ("GET", "/janitor"),
        ("POST", "/stats"),
    ):
        status, _, body = http_request(method, path)
        assert status == 405, (method, path)
        assert "error" in json.loads(body)


def test_malformed_json_is_400(http_request):
    status, _, _ = http_request(
        "PUT",
        f"/ns/n/k/{hex_key(1)}",
        body=b"{not json",
        headers={"Content-Type": "application/json"},
    )
    assert status == 400
    status, _, _ = http_request(
        "POST",
        "/ns/n/mget",
        body=b'{"keys": "not-a-list"}',
        headers={"Content-Type": "application/json"},
    )
    assert status == 400
    status, _, _ = http_request(
        "POST",
        "/janitor",
        body=json.dumps({"max_age": -3}).encode(),
        headers={"Content-Type": "application/json"},
    )
    assert status == 400


def test_unsupported_content_type_is_415(http_request):
    status, _, _ = http_request(
        "PUT",
        f"/ns/n/k/{hex_key(1)}",
        body=b"v=1",
        headers={"Content-Type": "text/plain"},
    )
    assert status == 415


def test_jsonl_backed_server_rejects_binary_payloads(tmp_path):
    """A records-only backend maps its domain error to 415, not 500."""
    with StoreServer(ShardedJsonlBackend(tmp_path / "records.jsonl")) as live:
        connection = http.client.HTTPConnection(live.host, live.port, timeout=10)
        try:
            connection.request(
                "PUT",
                f"/ns/n/k/{hex_key(1)}",
                body=b"\x80\x05blob",
                headers={"Content-Type": "application/octet-stream"},
            )
            response = connection.getresponse()
            response.read()
            assert response.status == 415
            # JSON records are still welcome.
            connection.request(
                "PUT",
                f"/ns/n/k/{hex_key(1)}",
                body=b'{"v": 1}',
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            response.read()
            assert response.status == 204
        finally:
            connection.close()


def test_server_over_memory_backend_and_ephemeral_port():
    with StoreServer(MemoryBackend()) as live:
        assert live.port != 0
        assert live.url.startswith("http://127.0.0.1:")
