"""The campaign coordinator: leasing, heartbeats, requeue, recovery.

State-machine coverage drives :class:`CampaignCoordinator` directly with
an injected fake clock (no sleeps anywhere); the HTTP section runs the
same machine behind a live :class:`StoreServer` to pin the wire contract
of the ``/campaign`` routes.
"""

from __future__ import annotations

import http.client
import json

import pytest

from repro.engine.checkpoint import CampaignCheckpoint, campaign_fingerprint
from repro.engine.jobs import CampaignSpec
from repro.engine.stream import EventLog
from repro.service import (
    CampaignCoordinator,
    CoordinatorError,
    LeasePolicy,
    StoreServer,
)
from repro.service.coordinator import CAMPAIGN_ID_CHARS, plan_waves
from repro.store import MemoryBackend


def small_spec(name="coord-smoke"):
    return CampaignSpec(
        name=name,
        suites=("h264",),
        max_rows_shared=1,
        max_cols_shared=1,
        chunk_size=2,
    )


def job_count(spec):
    return sum(1 for p in spec.candidate_grid() if p.kind != "base")


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def coordinator(tmp_path, clock):
    with CampaignCoordinator(tmp_path / "coord", clock=clock) as coord:
        yield coord


def fake_records(*keys):
    return {key: {"label": key, "area_slices": 1.0, "stalls": {}} for key in keys}


def drain(coordinator, campaign_id, worker):
    """Lease-and-complete until the campaign reports complete."""
    waves = 0
    while True:
        grant = coordinator.lease(campaign_id, worker)
        if grant["status"] == "complete":
            return waves
        assert grant["status"] == "leased"
        coordinator.complete(
            campaign_id,
            grant["lease"],
            grant["suite"],
            grant["wave"],
            fake_records(f"rec-{grant['suite']}-{grant['wave']}"),
        )
        waves += 1


# ----------------------------------------------------------------------
# Policy and wave planning
# ----------------------------------------------------------------------
def test_lease_policy_round_trips_and_validates():
    policy = LeasePolicy(lease_timeout=12.0, heartbeat_interval=3.0, max_attempts=2)
    assert LeasePolicy.from_dict(policy.as_dict()) == policy
    with pytest.raises(ValueError, match="lease_timeout must be positive"):
        LeasePolicy(lease_timeout=0.0)
    with pytest.raises(ValueError, match="heartbeat_interval must be positive"):
        LeasePolicy(heartbeat_interval=-1.0)
    with pytest.raises(ValueError, match="shorter"):
        LeasePolicy(lease_timeout=5.0, heartbeat_interval=5.0)
    with pytest.raises(ValueError, match="max_attempts"):
        LeasePolicy(max_attempts=0)


def test_plan_waves_covers_the_grid_exactly_once():
    spec = CampaignSpec(
        name="plan",
        suites=("dsp", "h264"),
        max_rows_shared=1,
        max_cols_shared=1,
        chunk_size=2,
    )
    jobs = job_count(spec)
    waves = plan_waves(spec, wave_size=2)
    for suite in spec.suites:
        suite_waves = sorted(
            (w for w in waves if w.suite == suite), key=lambda w: w.index
        )
        covered = [index for wave in suite_waves for index in wave.indices]
        assert covered == list(range(jobs))  # grid order, no gaps, no overlap
        assert [w.include_base for w in suite_waves] == [True] + [False] * (
            len(suite_waves) - 1
        )
    with pytest.raises(CoordinatorError) as err:
        plan_waves(spec, wave_size=0)
    assert err.value.status == 400


# ----------------------------------------------------------------------
# Submission
# ----------------------------------------------------------------------
def test_create_campaign_is_idempotent_by_fingerprint(coordinator):
    spec = small_spec()
    first = coordinator.create_campaign(spec.as_payload())
    again = coordinator.create_campaign(spec.as_payload())
    assert first["created"] is True
    assert again["created"] is False
    assert first["campaign"] == again["campaign"]
    assert first["campaign"] == campaign_fingerprint(spec)[:CAMPAIGN_ID_CHARS]
    assert coordinator.campaign_ids() == [first["campaign"]]
    assert first["waves"]["pending"] == first["waves"]["total"] > 0


def test_create_campaign_rejects_garbage(coordinator):
    with pytest.raises(CoordinatorError) as err:
        coordinator.create_campaign({"suites": "not-a-list"})
    assert err.value.status == 400


def test_unknown_campaign_is_404(coordinator):
    with pytest.raises(CoordinatorError) as err:
        coordinator.status("deadbeef")
    assert err.value.status == 404


# ----------------------------------------------------------------------
# Lease / heartbeat / complete
# ----------------------------------------------------------------------
def test_lease_complete_happy_path(coordinator):
    spec = small_spec()
    campaign = coordinator.create_campaign(spec.as_payload())["campaign"]
    worker = coordinator.register(campaign, "alice")["worker"]
    assert worker.startswith("alice-")

    grant = coordinator.lease(campaign, worker)
    assert grant["status"] == "leased"
    assert grant["suite"] == "h264"
    assert grant["wave"] == 0
    assert grant["include_base"] is True
    assert grant["attempt"] == 1
    assert grant["indices"] == list(range(len(grant["indices"])))

    assert coordinator.heartbeat(campaign, grant["lease"])["status"] == "ok"

    outcome = coordinator.complete(
        campaign, grant["lease"], "h264", 0, fake_records("a", "b")
    )
    assert outcome == {
        "status": "ok",
        "duplicate": False,
        "lease_valid": True,
        "records": 2,
        "campaign_complete": False,
    }
    status = coordinator.status(campaign)
    assert status["waves"]["done"] == 1
    assert status["records"] == 2
    assert status["workers"][worker] == {"name": "alice", "leases": 1, "completed": 1}


def test_duplicate_completion_is_harmless(coordinator):
    campaign = coordinator.create_campaign(small_spec().as_payload())["campaign"]
    worker = coordinator.register(campaign)["worker"]
    grant = coordinator.lease(campaign, worker)
    first = coordinator.complete(campaign, grant["lease"], "h264", 0, fake_records("a"))
    second = coordinator.complete(campaign, grant["lease"], "h264", 0, fake_records("a"))
    assert first["duplicate"] is False
    assert second["duplicate"] is True
    assert second["lease_valid"] is False  # the first completion consumed it
    assert coordinator.status(campaign)["records"] == 1  # content-hash dedup


def test_complete_validates_its_records_and_wave(coordinator):
    campaign = coordinator.create_campaign(small_spec().as_payload())["campaign"]
    with pytest.raises(CoordinatorError) as err:
        coordinator.complete(campaign, None, "h264", 0, {"key": "not-a-dict"})
    assert err.value.status == 400
    with pytest.raises(CoordinatorError) as err:
        coordinator.complete(campaign, None, "h264", 999, fake_records("a"))
    assert err.value.status == 404


def test_draining_every_wave_completes_the_campaign(coordinator, tmp_path):
    spec = small_spec()
    campaign = coordinator.create_campaign(spec.as_payload(), wave_size=2)["campaign"]
    worker = coordinator.register(campaign)["worker"]
    expected_waves = len(plan_waves(spec, 2))
    assert drain(coordinator, campaign, worker) == expected_waves
    status = coordinator.status(campaign)
    assert status["complete"] is True
    assert status["waves"]["done"] == expected_waves
    # The journal carries the full story and replays strictly.
    events = EventLog.read(
        tmp_path / "coord" / campaign / "events.jsonl", strict=True
    )
    types = [event.type for event in events]
    assert types[0] == "campaign_start"
    assert types[-1] == "campaign_end"
    assert types.count("lease") == expected_waves
    assert types.count("wave_end") == expected_waves


# ----------------------------------------------------------------------
# Expiry and requeue
# ----------------------------------------------------------------------
def test_silent_worker_lease_expires_and_requeues(coordinator, clock):
    campaign = coordinator.create_campaign(small_spec().as_payload())["campaign"]
    dead = coordinator.register(campaign, "dead")["worker"]
    live = coordinator.register(campaign, "live")["worker"]

    grant = coordinator.lease(campaign, dead)
    clock.advance(coordinator.policy.lease_timeout + 1)

    regrant = coordinator.lease(campaign, live)
    assert regrant["status"] == "leased"
    assert (regrant["suite"], regrant["wave"]) == (grant["suite"], grant["wave"])
    assert regrant["attempt"] == 2
    assert regrant["lease"] != grant["lease"]
    assert coordinator.status(campaign)["requeues"] == 1

    # The dead worker's lease is gone: its heartbeat gets the 409.
    with pytest.raises(CoordinatorError) as err:
        coordinator.heartbeat(campaign, grant["lease"])
    assert err.value.status == 409


def test_heartbeats_keep_a_lease_alive_indefinitely(coordinator, clock):
    campaign = coordinator.create_campaign(small_spec().as_payload())["campaign"]
    worker = coordinator.register(campaign)["worker"]
    grant = coordinator.lease(campaign, worker)
    for _ in range(5):
        clock.advance(coordinator.policy.lease_timeout - 1)
        assert coordinator.heartbeat(campaign, grant["lease"])["status"] == "ok"
    assert coordinator.status(campaign)["requeues"] == 0


def test_late_completion_after_expiry_still_lands(coordinator, clock):
    """A worker that lost its lease mid-evaluation may still report: the
    records are content-addressed and the merge is idempotent."""
    campaign = coordinator.create_campaign(small_spec().as_payload())["campaign"]
    worker = coordinator.register(campaign)["worker"]
    grant = coordinator.lease(campaign, worker)
    clock.advance(coordinator.policy.lease_timeout + 1)
    outcome = coordinator.complete(
        campaign, grant["lease"], grant["suite"], grant["wave"], fake_records("late")
    )
    assert outcome["duplicate"] is False  # first completion wins, even late
    assert outcome["lease_valid"] is False
    status = coordinator.status(campaign)
    assert status["requeues"] == 1
    assert status["waves"]["done"] == 1
    assert status["records"] == 1


def test_a_wave_that_kills_every_worker_fails_the_campaign(tmp_path, clock):
    policy = LeasePolicy(lease_timeout=10.0, heartbeat_interval=1.0, max_attempts=2)
    with CampaignCoordinator(tmp_path / "coord", policy=policy, clock=clock) as coord:
        campaign = coord.create_campaign(small_spec().as_payload())["campaign"]
        worker = coord.register(campaign)["worker"]
        for _ in range(policy.max_attempts):
            assert coord.lease(campaign, worker)["status"] == "leased"
            clock.advance(policy.lease_timeout + 1)
        grant = coord.lease(campaign, worker)
        assert grant["status"] == "failed"
        assert "exhausted" in grant["detail"]
        assert coord.status(campaign)["failed"] is not None


# ----------------------------------------------------------------------
# Restart recovery
# ----------------------------------------------------------------------
def test_coordinator_restart_recovers_waves_requeues_and_records(tmp_path, clock):
    root = tmp_path / "coord"
    spec = small_spec()
    with CampaignCoordinator(root, clock=clock) as coord:
        campaign = coord.create_campaign(spec.as_payload(), wave_size=2)["campaign"]
        worker = coord.register(campaign)["worker"]
        # One completed wave, one expired lease, one in-flight lease.
        done = coord.lease(campaign, worker)
        coord.complete(campaign, done["lease"], done["suite"], done["wave"], fake_records("a", "b"))
        expired = coord.lease(campaign, worker)
        clock.advance(coord.policy.lease_timeout + 1)
        coord.status(campaign)  # sweeps the deadline -> requeue journaled
        in_flight = coord.lease(campaign, worker)
        before = coord.status(campaign)
        assert before["waves"]["done"] == 1
        assert before["requeues"] == 1

    with CampaignCoordinator(root, clock=clock) as reborn:
        assert reborn.campaign_ids() == [campaign]
        status = reborn.status(campaign)
        # Completed waves stay completed, requeues are remembered, but
        # in-flight leases are forgotten (their waves lease again).
        assert status["waves"]["done"] == 1
        assert status["waves"]["leased"] == 0
        assert status["requeues"] == 1
        assert status["records"] == 2
        with pytest.raises(CoordinatorError) as err:
            reborn.heartbeat(campaign, in_flight["lease"])
        assert err.value.status == 409
        # The forgotten wave leases again and the campaign still drains.
        worker = reborn.register(campaign)["worker"]
        drain(reborn, campaign, worker)
        assert reborn.status(campaign)["complete"] is True
        # The reopened journal continued the sequence, strictly readable.
        events = EventLog.read(root / campaign / "events.jsonl", strict=True)
        assert [event.type for event in events][-1] == "campaign_end"
    # The merged checkpoint is the PR 5 substrate, fingerprint intact.
    checkpoint = CampaignCheckpoint.load(root / campaign / "checkpoint.json")
    assert checkpoint.fingerprint == campaign_fingerprint(spec)
    assert checkpoint.total_records >= 2
    assert expired["lease"] != in_flight["lease"]


# ----------------------------------------------------------------------
# The HTTP wire contract
# ----------------------------------------------------------------------
@pytest.fixture()
def fleet_server(tmp_path, clock):
    coordinator = CampaignCoordinator(tmp_path / "coord", clock=clock)
    with StoreServer(MemoryBackend(), coordinator=coordinator) as live:
        yield live
    coordinator.close()


@pytest.fixture()
def http_request(fleet_server):
    connection = http.client.HTTPConnection(
        fleet_server.host, fleet_server.port, timeout=10
    )

    def request(method, path, document=None):
        body = None if document is None else json.dumps(document).encode()
        headers = {} if body is None else {"Content-Type": "application/json"}
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        return response.status, json.loads(response.read() or b"{}")

    yield request
    connection.close()


def test_http_fleet_round_trip(http_request):
    spec = small_spec("http-smoke")
    status, created = http_request(
        "POST", "/campaign", {"spec": spec.as_payload(), "wave_size": 2}
    )
    assert status == 200 and created["created"] is True
    campaign = created["campaign"]

    status, registered = http_request(
        "POST", f"/campaign/{campaign}/register", {"worker": "w"}
    )
    assert status == 200
    worker = registered["worker"]

    status, grant = http_request(
        "POST", f"/campaign/{campaign}/lease", {"worker": worker}
    )
    assert status == 200 and grant["status"] == "leased"

    status, beat = http_request(
        "POST", f"/campaign/{campaign}/heartbeat", {"lease": grant["lease"]}
    )
    assert status == 200 and beat["status"] == "ok"

    status, outcome = http_request(
        "POST",
        f"/campaign/{campaign}/complete",
        {
            "lease": grant["lease"],
            "suite": grant["suite"],
            "wave": grant["wave"],
            "records": fake_records("a"),
        },
    )
    assert status == 200 and outcome["lease_valid"] is True

    status, doc = http_request("GET", f"/campaign/{campaign}")
    assert status == 200 and doc["waves"]["done"] == 1

    status, checkpoint = http_request("GET", f"/campaign/{campaign}/checkpoint")
    assert status == 200
    assert "a" in checkpoint["suites"][grant["suite"]]["records"]


def test_http_coordinator_errors_map_to_statuses(http_request):
    status, body = http_request("GET", "/campaign/deadbeef")
    assert status == 404
    status, body = http_request("POST", "/campaign", {"spec": "nope"})
    assert status == 400
    status, body = http_request("GET", "/campaign")  # submission is POST-only
    assert status == 405
    spec = small_spec("http-errors")
    _, created = http_request("POST", "/campaign", {"spec": spec.as_payload()})
    campaign = created["campaign"]
    status, body = http_request(
        "POST", f"/campaign/{campaign}/heartbeat", {"lease": "no-such-lease"}
    )
    assert status == 409
    assert "not active" in body["error"]


def test_service_without_coordinator_404s_campaign_routes(tmp_path):
    with StoreServer(MemoryBackend()) as live:
        connection = http.client.HTTPConnection(live.host, live.port, timeout=10)
        try:
            connection.request(
                "POST",
                "/campaign",
                body=json.dumps({"spec": small_spec().as_payload()}).encode(),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            payload = json.loads(response.read())
            assert response.status == 404
            assert "no coordinator" in payload["error"]
        finally:
            connection.close()
