"""Tests for the matrix-multiplication example kernels (paper Figs. 2/6)."""

from __future__ import annotations

import pytest

from repro.errors import KernelError
from repro.ir import OpType, validate_dfg
from repro.kernels.matmul import matrix_multiplication, matrix_multiplication_column


def test_element_kernel_structure():
    kernel = matrix_multiplication(order=4, constant=1)
    assert kernel.iterations == 16
    body = kernel.build_body()
    counts = body.op_counts()
    assert counts[OpType.LOAD] == 8
    assert counts[OpType.MUL] == 4
    assert counts[OpType.ADD] == 3
    assert counts[OpType.STORE] == 1
    validate_dfg(kernel.build(iterations=4))


def test_constant_scaling_adds_multiplication():
    unscaled = matrix_multiplication(order=2, constant=1).build_body()
    scaled = matrix_multiplication(order=2, constant=3).build_body()
    assert scaled.multiplication_count() == unscaled.multiplication_count() + 1
    constants = scaled.operations_of_type(OpType.CONST)
    assert len(constants) == 1 and constants[0].immediate == 3


def test_column_kernel_structure():
    kernel = matrix_multiplication_column(order=4)
    assert kernel.iterations == 4
    body = kernel.build_body()
    # One column of the result: 4 elements x (4 mults + 3 adds + 8 loads + store).
    assert body.op_counts()[OpType.MUL] == 16
    assert body.op_counts()[OpType.STORE] == 4
    validate_dfg(kernel.build())


def test_order_must_be_positive():
    with pytest.raises(KernelError):
        matrix_multiplication(order=0)
    with pytest.raises(KernelError):
        matrix_multiplication_column(order=-1)


def test_load_indices_cover_both_operands():
    dfg = matrix_multiplication(order=2).build()
    arrays = {op.array for op in dfg.operations_of_type(OpType.LOAD)}
    assert arrays == {"X", "Y"}
    stores = dfg.operations_of_type(OpType.STORE)
    assert {op.index for op in stores} == {0, 1, 2, 3}
