"""Tests for the Livermore-loop kernels (paper Table 4 workloads)."""

from __future__ import annotations

import pytest

from repro.ir import OpType, validate_dfg
from repro.kernels.livermore import (
    PAPER_ITERATIONS,
    hydro_fragment,
    iccg,
    inner_product,
    livermore_kernels,
    state_fragment,
    tri_diagonal,
)


def test_suite_contains_five_kernels_in_table_order():
    names = [kernel.name for kernel in livermore_kernels()]
    assert names == ["Hydro", "ICCG", "Tri-diagonal", "Inner product", "State"]


def test_default_iteration_counts_match_paper():
    assert hydro_fragment().iterations == 32
    assert iccg().iterations == 32
    assert tri_diagonal().iterations == 64
    assert inner_product().iterations == 128
    assert state_fragment().iterations == 16
    assert PAPER_ITERATIONS["Inner product"] == 128


@pytest.mark.parametrize("factory", [hydro_fragment, iccg, tri_diagonal, inner_product, state_fragment])
def test_unrolled_kernels_are_valid_dfgs(factory):
    kernel = factory()
    validate_dfg(kernel.build(iterations=min(kernel.iterations, 8)))


def test_hydro_operation_mix():
    body = hydro_fragment().build_body()
    counts = body.op_counts()
    assert counts[OpType.MUL] == 3
    assert counts[OpType.ADD] == 2
    assert counts[OpType.LOAD] == 3
    assert counts[OpType.STORE] == 1
    assert hydro_fragment().operation_set_names() == ["add", "mult"]


def test_iccg_operation_mix():
    body = iccg().build_body()
    counts = body.op_counts()
    assert counts[OpType.MUL] == 1
    assert counts[OpType.SUB] == 1
    assert iccg().operation_set_names() == ["mult", "sub"]


def test_tri_diagonal_operation_mix_and_independence():
    kernel = tri_diagonal()
    assert kernel.operation_set_names() == ["mult", "sub"]
    body = kernel.build_body()
    assert body.op_counts()[OpType.LOAD] == 3
    # The Jacobi-style form has no cross-iteration edges: the unrolled DFG's
    # dependence depth equals the single-iteration depth.
    unrolled = kernel.build(iterations=8)
    assert unrolled.depth() == body.depth()


def test_inner_product_partial_sums_and_epilogue():
    kernel = inner_product(iterations=32, partial_sums=16)
    dfg = kernel.build()
    stores = dfg.operations_of_type(OpType.STORE)
    assert len(stores) == 1
    assert stores[0].array == "q"
    assert dfg.multiplication_count() == 32
    # 32 accumulating adds minus the 16 first-fills, plus the 15-add reduction tree.
    assert len(dfg.operations_of_type(OpType.ADD)) == (32 - 16) + 15


def test_inner_product_operation_set():
    assert inner_product().operation_set_names() == ["add", "mult"]


def test_state_has_eight_multiplications_per_iteration():
    body = state_fragment().build_body()
    assert body.op_counts()[OpType.MUL] == 8
    assert body.op_counts()[OpType.LOAD] == 9
    assert state_fragment().operation_set_names() == ["add", "mult"]


def test_constants_created_once_across_iterations():
    dfg = hydro_fragment(iterations=4).build()
    constants = dfg.operations_of_type(OpType.CONST)
    assert len(constants) == 3  # q, r, t shared by every iteration


def test_iteration_annotation_matches_unroll_index():
    dfg = iccg(iterations=5).build()
    assert dfg.iterations() == [0, 1, 2, 3, 4]
