"""Tests for the H.264 extension kernels (the paper's future-work domain)."""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy", reason="reference computations need numpy")

from repro.arch import base_architecture, rsp_architecture
from repro.ir import OpType, validate_dfg
from repro.kernels.h264 import h264_kernels, integer_transform_4x4, quarter_pel_interpolation
from repro.mapping import RSPMapper
from repro.sim import ArraySimulator, DataMemory


def test_suite_contents():
    names = [kernel.name for kernel in h264_kernels()]
    assert names == ["H264-IT4x4", "H264-QPEL"]


def test_integer_transform_is_multiplier_free():
    kernel = integer_transform_4x4()
    dfg = kernel.build()
    validate_dfg(dfg)
    assert dfg.multiplication_count() == 0
    assert set(kernel.operation_set_names()) == {"add", "sub", "shift"}


def test_quarter_pel_is_multiplication_heavy():
    kernel = quarter_pel_interpolation()
    dfg = kernel.build(iterations=4)
    validate_dfg(dfg)
    assert dfg.multiplication_count() == 4 * 6
    assert "mult" in kernel.operation_set_names()


def test_integer_transform_matches_reference():
    """The mapped transform equals the textbook H.264 core transform C X C^T."""
    kernel = integer_transform_4x4()
    mapper = RSPMapper()
    result = mapper.map_kernel(kernel, rsp_architecture(2))
    rng = np.random.default_rng(11)
    block = rng.integers(-64, 64, size=(4, 4))
    memory = DataMemory({"residual": block.flatten().tolist()})
    simulation = ArraySimulator().run(result.schedule, result.dfg, memory)
    transform = np.array([[1, 1, 1, 1], [2, 1, -1, -2], [1, -1, -1, 1], [1, -2, 2, -1]])
    expected = transform @ block @ transform.T
    measured = np.array(simulation.memory.as_list("coeff", 16)).reshape(4, 4)
    np.testing.assert_array_equal(measured, expected)


def test_quarter_pel_matches_reference():
    kernel = quarter_pel_interpolation(iterations=8)
    mapper = RSPMapper()
    result = mapper.map_kernel(kernel, base_architecture())
    rng = np.random.default_rng(13)
    pixels = rng.integers(0, 255, size=8 + 6)
    memory = DataMemory({"pel": pixels.tolist()})
    simulation = ArraySimulator().run(result.schedule, result.dfg, memory)
    weights = np.array([1, -5, 20, 20, -5, 1])
    expected = [int(np.dot(pixels[n : n + 6], weights)) >> 5 for n in range(8)]
    assert simulation.memory.as_list("half", 8) == expected


def test_h264_domain_behaves_like_the_paper_pair():
    """IT4x4 mirrors SAD (clock-bound), QPEL mirrors 2D-FDCT (multiplier-bound)."""
    mapper = RSPMapper()
    transform = mapper.map_kernel(integer_transform_4x4(), rsp_architecture(2))
    # No multiplications -> no stalls and no pipeline overhead.
    assert transform.stall_cycles == 0
    assert transform.cycles == transform.base_cycles
    qpel_rs1 = mapper.map_kernel(quarter_pel_interpolation(), rsp_architecture(1))
    qpel_rsp2 = mapper.map_kernel(quarter_pel_interpolation(), rsp_architecture(2))
    assert qpel_rsp2.stall_cycles <= qpel_rs1.stall_cycles
