"""Tests for the DSP kernels (paper Table 5 workloads)."""

from __future__ import annotations

import pytest

from repro.ir import OpType, validate_dfg
from repro.kernels.dsp import (
    dsp_kernels,
    fdct_2d,
    fft_multiplication_loop,
    matrix_vector_multiplication,
    sad_16x16,
)


def test_suite_contains_four_kernels_in_table_order():
    assert [kernel.name for kernel in dsp_kernels()] == ["2D-FDCT", "SAD", "MVM", "FFT"]


@pytest.mark.parametrize(
    "factory, iterations",
    [(fdct_2d, 4), (sad_16x16, 4), (matrix_vector_multiplication, 16), (fft_multiplication_loop, 8)],
)
def test_unrolled_kernels_are_valid(factory, iterations):
    validate_dfg(factory().build(iterations=iterations))


def test_fdct_operation_set_matches_paper():
    assert fdct_2d().operation_set_names() == ["add", "mult", "shift", "sub"]


def test_fdct_row_and_column_passes_touch_different_arrays():
    dfg = fdct_2d().build()
    loads = dfg.operations_of_type(OpType.LOAD)
    arrays = {op.array for op in loads}
    assert arrays == {"block", "temp"}
    stores = {op.array for op in dfg.operations_of_type(OpType.STORE)}
    assert stores == {"temp", "coeff"}


def test_fdct_has_multiplications_and_shifts_every_iteration():
    body = fdct_2d().build_body()
    counts = body.op_counts()
    assert counts[OpType.MUL] >= 10
    assert counts[OpType.SHIFT] == 8
    assert counts[OpType.LOAD] == 8
    assert counts[OpType.STORE] == 8


def test_sad_has_no_multiplications():
    kernel = sad_16x16()
    assert kernel.build(iterations=4).multiplication_count() == 0
    assert kernel.operation_set_names() == ["abs", "add", "sub"]


def test_sad_row_structure():
    body = sad_16x16(width=16).build_body()
    counts = body.op_counts()
    assert counts[OpType.LOAD] == 32
    assert counts[OpType.SUB] == 16
    assert counts[OpType.ABS] == 16
    assert counts[OpType.ADD] == 15


def test_sad_epilogue_stores_single_result():
    dfg = sad_16x16(iterations=4).build()
    stores = dfg.operations_of_type(OpType.STORE)
    assert len(stores) == 1
    assert stores[0].array == "sad"


def test_mvm_mac_granularity():
    kernel = matrix_vector_multiplication(iterations=64, vector_length=8)
    body = kernel.build_body()
    assert body.op_counts()[OpType.MUL] == 1
    assert body.op_counts()[OpType.LOAD] == 2
    dfg = kernel.build()
    assert dfg.multiplication_count() == 64
    # One store per output row in the epilogue.
    assert len(dfg.operations_of_type(OpType.STORE)) == 8
    assert kernel.operation_set_names() == ["add", "mult"]


def test_fft_complex_multiply_structure():
    body = fft_multiplication_loop().build_body()
    counts = body.op_counts()
    assert counts[OpType.MUL] == 4
    assert counts[OpType.LOAD] == 6
    assert counts[OpType.STORE] == 4
    assert counts[OpType.ADD] == 3
    assert counts[OpType.SUB] == 3
    assert fft_multiplication_loop().operation_set_names() == ["add", "mult", "sub"]


def test_default_iteration_counts():
    assert fdct_2d().iterations == 16
    assert sad_16x16().iterations == 16
    assert matrix_vector_multiplication().iterations == 64
    assert fft_multiplication_loop().iterations == 32
