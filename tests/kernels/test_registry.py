"""Tests for the kernel registry and the Table 3 reference data."""

from __future__ import annotations

import pytest

from repro.errors import UnknownKernelError
from repro.kernels.registry import (
    ALL_KERNEL_NAMES,
    DSP_KERNEL_NAMES,
    LIVERMORE_KERNEL_NAMES,
    PAPER_TABLE3,
    dsp_suite,
    example_kernels,
    get_kernel,
    kernel_names,
    livermore_suite,
    paper_suite,
)


def test_all_kernel_names_cover_both_tables():
    assert ALL_KERNEL_NAMES == LIVERMORE_KERNEL_NAMES + DSP_KERNEL_NAMES
    assert len(ALL_KERNEL_NAMES) == 9
    assert kernel_names() == list(ALL_KERNEL_NAMES)


def test_get_kernel_returns_named_kernel():
    for name in ALL_KERNEL_NAMES:
        kernel = get_kernel(name)
        assert kernel.name == name


def test_get_kernel_unknown_name():
    with pytest.raises(UnknownKernelError):
        get_kernel("Mandelbrot")


def test_get_kernel_returns_fresh_instances():
    assert get_kernel("MVM") is not get_kernel("MVM")


def test_suites_match_paper_tables():
    assert [kernel.name for kernel in livermore_suite()] == list(LIVERMORE_KERNEL_NAMES)
    assert [kernel.name for kernel in dsp_suite()] == list(DSP_KERNEL_NAMES)
    assert [kernel.name for kernel in paper_suite()] == list(ALL_KERNEL_NAMES)


def test_paper_table3_reference_consistency():
    assert set(PAPER_TABLE3) == set(ALL_KERNEL_NAMES)
    assert PAPER_TABLE3["SAD"].max_multiplications == 0
    assert PAPER_TABLE3["2D-FDCT"].max_multiplications == 16
    assert PAPER_TABLE3["Inner product"].operation_set == ("mult", "add")


def test_kernel_operation_sets_match_paper_table3():
    """Our kernels use exactly the computational operations the paper lists.

    The single deliberate deviation is SAD, where the absolute difference is
    expressed as sub + abs (the paper folds the subtraction into its abs
    operation), so ``sub`` is tolerated there.
    """
    for name in ALL_KERNEL_NAMES:
        measured = set(get_kernel(name).operation_set_names())
        expected = set(PAPER_TABLE3[name].operation_set)
        if name == "SAD":
            measured.discard("sub")
        assert measured == expected, name


def test_example_kernels_present():
    names = [kernel.name for kernel in example_kernels()]
    assert any("MatMul" in name for name in names)
    assert len(names) >= 2


def test_iteration_counts_match_table_headers():
    expected = {
        "Hydro": 32,
        "ICCG": 32,
        "Tri-diagonal": 64,
        "Inner product": 128,
        "State": 16,
        "MVM": 64,
        "FFT": 32,
    }
    for name, iterations in expected.items():
        assert get_kernel(name).iterations == iterations
