"""Benchmark: async wave prefetch over a remote store vs the sync path.

The streaming campaign mode overlaps store round trips with compute: while
wave N evaluates, a background thread already issues wave N+1's batched
``mget``.  Against a remote store every synchronous wave pays its lookup
round trip *before* any evaluation starts, so on a cold cache the
streamed path must win wall clock — by at least
:data:`PREFETCH_SPEEDUP_FLOOR` here, with the round-trip cost made
deterministic by a latency-injecting wrapper around the real
:class:`~repro.store.RemoteBackend` (the store service itself runs live;
only the wire latency is simulated, as LAN loopback is too fast to show
the WAN effect the overlap exists for).

The second claim is that overlap changes *when* requests happen, never
*what* is stored: after a cold streamed campaign, a repeat run — sync or
streamed — is served 100% from the remote store.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Mapping, Sequence, Tuple

import pytest

from repro.core.exploration import RSPDesignSpaceExplorer
from repro.core.rsp_params import enumerate_design_space
from repro.core.stalls import CriticalOpIssue, ScheduleProfile
from repro.engine.cache import EvaluationCache
from repro.engine.executor import ExecutorConfig, run_exploration
from repro.engine.stream import AsyncPrefetcher
from repro.service import StoreServer
from repro.store import RemoteBackend, ShardedJsonlBackend, StoreBackend
from repro.utils.tabulate import format_table

#: Simulated one-way wire latency per store request, seconds.
WIRE_LATENCY = 0.02
#: Cold streamed campaign must beat the cold sync campaign by this factor.
PREFETCH_SPEEDUP_FLOOR = 1.2


class WanBackend(StoreBackend):
    """A backend wrapper charging a fixed latency per request.

    Models the WAN round trip the prefetcher exists to hide; everything
    else — encoding, the live HTTP server, the JSONL store behind it —
    stays real.
    """

    name = "wan"

    def __init__(self, inner: StoreBackend, latency: float) -> None:
        self.inner = inner
        self.latency = latency
        self.requests = 0

    def _pay(self) -> None:
        self.requests += 1
        time.sleep(self.latency)

    def contains(self, namespace: str, key: str) -> bool:
        self._pay()
        return self.inner.contains(namespace, key)

    def get(self, namespace: str, key: str) -> Tuple[bool, Any]:
        self._pay()
        return self.inner.get(namespace, key)

    def put(self, namespace: str, key: str, value: Any) -> None:
        self._pay()
        self.inner.put(namespace, key, value)

    def get_many(self, namespace: str, keys: Sequence[str]) -> Dict[str, Any]:
        self._pay()
        return self.inner.get_many(namespace, keys)

    def put_many(self, namespace: str, records: Mapping[str, Any]) -> int:
        self._pay()
        return self.inner.put_many(namespace, records)

    def delete(self, namespace: str, key: str) -> bool:
        self._pay()
        return self.inner.delete(namespace, key)

    def scan(self, namespace=None):
        self._pay()
        yield from self.inner.scan(namespace)

    def stats(self):
        return self.inner.stats()

    def compact(self):
        return self.inner.compact()


def synthetic_profiles() -> dict:
    issues = [
        CriticalOpIssue(cycle=cycle, row=index % 8, col=index // 8, iteration=index,
                        has_immediate_dependent=True)
        for cycle in range(4)
        for index in range(16)
    ]
    heavy = ScheduleProfile(kernel="heavy", length=12, critical_issues=tuple(issues),
                            rows=8, cols=8)
    light = ScheduleProfile(kernel="light", length=20, critical_issues=(), rows=8, cols=8)
    return {"heavy": heavy, "light": light}


@pytest.fixture()
def server(tmp_path):
    with StoreServer(
        ShardedJsonlBackend(tmp_path / "service.jsonl", num_shards=4)
    ) as live:
        yield live


def campaign(server, grid, explorer, namespace, prefetcher=None):
    remote = RemoteBackend(server.url, strict=True)
    cache = EvaluationCache(
        backend=WanBackend(remote, WIRE_LATENCY), namespace=namespace
    )
    started = time.perf_counter()
    outcome = run_exploration(
        explorer,
        candidates=grid,
        config=ExecutorConfig(chunk_size=8),
        cache=cache,
        prefetcher=prefetcher,
    )
    seconds = time.perf_counter() - started
    remote.close()
    return outcome, seconds


def test_async_prefetch_overlaps_remote_round_trips(server, bench_metrics):
    explorer = RSPDesignSpaceExplorer(synthetic_profiles())
    grid = enumerate_design_space(
        max_rows_shared=7, max_cols_shared=7, stage_options=(1, 2, 3, 4)
    )
    assert len(grid) >= 200

    # Cold cache, synchronous waves: every wave serialises its mget.
    sync_cold, sync_seconds = campaign(server, grid, explorer, "sync")

    # Cold cache, streamed waves: wave N+1's mget rides behind wave N.
    with AsyncPrefetcher() as prefetcher:
        stream_cold, stream_seconds = campaign(
            server, grid, explorer, "stream", prefetcher=prefetcher
        )

    # Warm repeats in both modes: the overlap changed nothing durable.
    warm_sync, warm_sync_seconds = campaign(server, grid, explorer, "stream")
    with AsyncPrefetcher() as prefetcher:
        warm_stream, warm_stream_seconds = campaign(
            server, grid, explorer, "stream", prefetcher=prefetcher
        )

    speedup = sync_seconds / stream_seconds
    rows = [
        ["sync cold", sync_cold.stats.evaluated, sync_cold.stats.cache_hits,
         round(sync_seconds, 3)],
        ["stream cold", stream_cold.stats.evaluated, stream_cold.stats.cache_hits,
         round(stream_seconds, 3)],
        ["sync warm", warm_sync.stats.evaluated, warm_sync.stats.cache_hits,
         round(warm_sync_seconds, 3)],
        ["stream warm", warm_stream.stats.evaluated, warm_stream.stats.cache_hits,
         round(warm_stream_seconds, 3)],
    ]
    print()
    print(
        format_table(
            rows,
            headers=["configuration", "evaluated", "hits", "seconds"],
            title=f"wave prefetch over a {WIRE_LATENCY * 1000:.0f} ms store link, "
            f"{len(grid)} candidates",
        )
    )
    print(f"cold stream speedup: {speedup:.2f}x (floor {PREFETCH_SPEEDUP_FLOOR}x)")
    bench_metrics["prefetch_speedup"] = round(speedup, 3)
    bench_metrics["sync_cold_seconds"] = round(sync_seconds, 3)
    bench_metrics["stream_cold_seconds"] = round(stream_seconds, 3)

    # Identical outcomes, faster wall clock.
    assert stream_cold.result.selected.parameters == sync_cold.result.selected.parameters
    assert [e.parameters for e in stream_cold.result.pareto] == [
        e.parameters for e in sync_cold.result.pareto
    ]
    assert speedup >= PREFETCH_SPEEDUP_FLOOR, (
        f"streamed cold campaign only {speedup:.2f}x faster than the sync "
        f"path (floor {PREFETCH_SPEEDUP_FLOOR}x)"
    )

    # Repeat runs are 100% warm in both modes: nothing was lost to overlap.
    for warm in (warm_sync, warm_stream):
        assert warm.stats.evaluated == 0
        assert warm.stats.cache_misses == 0
        assert warm.stats.cache_hit_rate == 1.0
