"""Ablation: context rearrangement (the paper's method) vs. full re-mapping.

The paper derives RS/RSP schedules by *rearranging* the base configuration
context (placements are kept, operations are only delayed).  A mapper that
re-places operations with knowledge of the sharing topology can do better.
This ablation quantifies the gap on the stall-prone kernels, i.e. how much
performance the paper's simpler flow leaves on the table.
"""

from __future__ import annotations

from repro.arch import rs_architecture, rsp_architecture
from repro.kernels import get_kernel
from repro.mapping import remap_schedule
from repro.utils.tabulate import format_table

CASES = [
    ("Hydro", 1),
    ("State", 1),
    ("2D-FDCT", 1),
    ("2D-FDCT", 2),
    ("FFT", 1),
]


def compare_strategies(mapper):
    rows = []
    for kernel_name, design in CASES:
        kernel = get_kernel(kernel_name)
        for factory, label in ((rs_architecture, "RS"), (rsp_architecture, "RSP")):
            spec = factory(design)
            rearranged = mapper.map_kernel(kernel, spec)
            remapped = remap_schedule(mapper.build_dfg(kernel), spec, kernel_name=kernel_name)
            rows.append(
                [
                    kernel_name,
                    f"{label}#{design}",
                    rearranged.base_cycles,
                    rearranged.cycles,
                    remapped.length,
                    rearranged.cycles - remapped.length,
                ]
            )
    return rows


def test_ablation_rearrangement_vs_remapping(benchmark, mapper):
    rows = benchmark.pedantic(compare_strategies, args=(mapper,), rounds=1, iterations=1)
    print()
    print(
        format_table(
            rows,
            headers=["kernel", "design", "base cycles", "rearranged cycles",
                     "re-mapped cycles", "gap"],
            title="Ablation: paper-style rearrangement vs. sharing-aware re-mapping",
        )
    )
    # Re-mapping is never worse than rearrangement (it has strictly more freedom).
    for row in rows:
        assert row[4] <= row[3]
    # And on at least one stall-prone case it is strictly better, quantifying
    # the pessimism of the paper's upper-bound flow.
    assert any(row[5] > 0 for row in rows)
