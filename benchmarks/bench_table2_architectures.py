"""Benchmark: regenerate paper Table 2 (area / critical path of the nine designs).

The analytical synthesis surrogate evaluates Base, RS#1-4 and RSP#1-4 and
prints area, delay and reduction ratios next to the published values.
"""

from __future__ import annotations

from repro.eval.tables import format_table2, table2_architectures


def test_table2_architecture_synthesis(benchmark, surrogate):
    estimates = benchmark(table2_architectures, surrogate)
    print()
    print(format_table2(estimates))
    by_name = {estimate.architecture: estimate for estimate in estimates}
    # Paper shape: RS#1 is the smallest design, RSP#1 has the shortest path.
    smallest = min(
        (name for name in by_name if name != "Base"),
        key=lambda name: by_name[name].array_area_slices,
    )
    fastest = min(by_name, key=lambda name: by_name[name].array_delay_ns)
    assert smallest == "RS#1"
    assert fastest == "RSP#1"
    # Absolute deviations from the published synthesis stay small.
    for estimate in estimates:
        assert abs(estimate.area_error_percent) < 15
        assert abs(estimate.delay_error_percent) < 10
