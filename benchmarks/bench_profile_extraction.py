"""Micro-benchmark: schedule-profile extraction on the H.264 kernels.

``extract_profile`` checks, for every successor of every multiplication,
whether the successor issues in the very cycle the product becomes
available.  The seed did that with a membership test plus a guarded
accessor call per successor (``successor in schedule`` +
``schedule.get(successor)``); the current implementation resolves the
name → entry dictionary once per schedule and performs a single ``dict.get``
per successor.  This benchmark times both variants on the H.264 kernels
(QPEL is the multiplication-heavy one) and asserts they produce identical
profiles, with the dictionary variant at least matching the seed loop.
"""

from __future__ import annotations

import time
from typing import List

from repro.core.stalls import CriticalOpIssue, ScheduleProfile
from repro.ir.dfg import DFG, OpType
from repro.kernels import h264_kernels
from repro.mapping.profile import extract_profile
from repro.mapping.schedule import Schedule
from repro.utils.tabulate import format_table

#: Timing repetitions; the best-of-N minimum is compared, which is robust
#: against scheduler noise on shared CI machines.
REPEATS = 20


def seed_extract_profile(schedule: Schedule, dfg: DFG) -> ScheduleProfile:
    """The seed's extraction loop (guarded accessor per successor lookup)."""
    issues: List[CriticalOpIssue] = []
    for entry in schedule.operations():
        if not entry.is_multiplication:
            continue
        has_immediate_dependent = False
        for successor in dfg.successors(entry.name):
            successor_op = dfg.operation(successor)
            if successor_op.optype in (OpType.CONST, OpType.NOP):
                continue
            if successor in schedule and schedule.get(successor).cycle == entry.finish_cycle:
                has_immediate_dependent = True
                break
        issues.append(
            CriticalOpIssue(
                cycle=entry.cycle,
                row=entry.row,
                col=entry.col,
                iteration=entry.operation.iteration,
                has_immediate_dependent=has_immediate_dependent,
            )
        )
    return ScheduleProfile(
        kernel=schedule.kernel_name,
        length=schedule.length,
        critical_issues=tuple(issues),
        rows=schedule.architecture.array.rows,
        cols=schedule.architecture.array.cols,
    )


def best_of_interleaved(first, second, *args):
    """Best-of timings of two functions, sampled alternately.

    Interleaving makes the comparison immune to drift (cache warm-up,
    frequency scaling) that would bias whichever function runs first.
    """
    bests = [float("inf"), float("inf")]
    for _ in range(REPEATS):
        for position, function in enumerate((first, second)):
            started = time.perf_counter()
            function(*args)
            bests[position] = min(bests[position], time.perf_counter() - started)
    return tuple(bests)


def test_profile_extraction_dict_lookup_wins(mapper):
    rows = []
    for kernel in h264_kernels():
        schedule = mapper.base_schedule(kernel)
        dfg = mapper.build_dfg(kernel)

        # Identical output first — the optimisation must be behaviour-free.
        assert extract_profile(schedule, dfg) == seed_extract_profile(schedule, dfg)

        seed_seconds, dict_seconds = best_of_interleaved(
            seed_extract_profile, extract_profile, schedule, dfg
        )
        speedup = seed_seconds / dict_seconds if dict_seconds else float("inf")
        rows.append(
            [
                kernel.name,
                dfg.multiplication_count(),
                round(seed_seconds * 1e6, 1),
                round(dict_seconds * 1e6, 1),
                f"{speedup:.2f}x",
            ]
        )
        # The dictionary variant does strictly less work per successor; a
        # small tolerance absorbs timer jitter on loaded machines.
        assert dict_seconds <= seed_seconds * 1.10, (
            f"{kernel.name}: dict lookup {dict_seconds * 1e6:.1f}us slower than "
            f"seed loop {seed_seconds * 1e6:.1f}us"
        )

    print()
    print(
        format_table(
            rows,
            headers=["kernel", "mults", "seed (us)", "dict (us)", "speedup"],
            title=f"extract_profile micro-benchmark (best of {REPEATS})",
        )
    )
