"""Ablation: array size.

The RSP template applies to any rectangular array.  This ablation compares
4x4, 8x8 and 16x16 instances of the Base / RS#2 / RSP#2 designs: the area
saving of sharing grows with the array (more PEs amortise each shared
multiplier's bus switch), while the critical-path behaviour is unchanged.
"""

from __future__ import annotations

from repro.arch import base_architecture, rs_architecture, rsp_architecture
from repro.utils.tabulate import format_table


def sweep_array_sizes(cost_model, timing_model):
    rows = []
    for size in (4, 8, 16):
        base = base_architecture(size, size)
        for factory, label in ((None, "Base"), (rs_architecture, "RS#2"), (rsp_architecture, "RSP#2")):
            if factory is None:
                spec = base
            else:
                spec = factory(2, rows=size, cols=size).with_name(f"{label} {size}x{size}")
            rows.append(
                [
                    f"{size}x{size}",
                    label,
                    round(cost_model.array_area(spec), 0),
                    round(cost_model.area_reduction_percent(spec, base), 2),
                    round(timing_model.critical_path_ns(spec), 2),
                    round(timing_model.delay_reduction_percent(spec, base), 2),
                ]
            )
    return rows


def test_ablation_array_size(benchmark, cost_model, timing_model):
    rows = benchmark.pedantic(
        sweep_array_sizes, args=(cost_model, timing_model), rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            rows,
            headers=["array", "design", "area (slices)", "area R(%)", "delay (ns)", "delay R(%)"],
            title="Ablation: RSP template scaled to different array sizes",
        )
    )
    by_key = {(row[0], row[1]): row for row in rows}
    # Sharing saves area at every size, and the relative saving is largest
    # on the biggest array (row sharing amortises better over 16 columns).
    reductions = [by_key[(f"{size}x{size}", "RS#2")][3] for size in (4, 8, 16)]
    assert all(value > 0 for value in reductions)
    assert reductions[2] >= reductions[1] >= reductions[0]
    # The critical-path improvement of RSP#2 does not depend on the size.
    delay_reductions = {size: by_key[(f"{size}x{size}", "RSP#2")][5] for size in (4, 8, 16)}
    assert max(delay_reductions.values()) - min(delay_reductions.values()) < 1e-6
