"""Benchmark: regenerate paper Table 4 (Livermore kernels on all nine designs).

For Hydro, ICCG, Tri-diagonal, Inner product and State the harness reports
cycles, execution time, delay reduction and stall counts on Base, RS#1-4
and RSP#1-4, next to the published values.
"""

from __future__ import annotations

from repro.eval.tables import format_performance_table, table4_livermore


def test_table4_livermore_kernels(benchmark, mapper, timing_model):
    table = benchmark.pedantic(
        table4_livermore, kwargs={"mapper": mapper, "timing_model": timing_model},
        rounds=1, iterations=1,
    )
    print()
    print(format_performance_table(table))
    assert table.kernels == ["Hydro", "ICCG", "Tri-diagonal", "Inner product", "State"]
    for kernel in table.kernels:
        base = table.record(kernel, "Base")
        # The base architecture is the reference: zero reduction, no stall count.
        assert base.delay_reduction == 0.0
        assert base.stalls is None
        # RS designs never beat the base by much (slower clock, same cycles)
        # while at least one RSP design improves every kernel.
        best = table.best_delay_reduction(kernel)
        assert best.architecture.startswith("RSP")
        assert best.delay_reduction > 0
        # RS#1 stalls on the multiplication-heavy kernels, exactly as in Table 4.
        if kernel in ("Hydro", "State"):
            assert table.record(kernel, "RS#1").stalls > 0
        # RSP#2 supports every Livermore kernel without stall (paper claim).
        assert table.record(kernel, "RSP#2").stalls == 0
