"""Benchmark: engine scaling — executors, cache hits and early reject.

Runs the nine-kernel paper domain over an enlarged candidate grid
(``shr``/``shc`` in 0..7, pipeline stages in {1, 2, 3, 4} — 253
candidates) through the exploration engine and compares:

* the serial backend against the process-pool backend,
* a cold cache against a warm cache (the second sweep must be served
  entirely from the JSON-lines store),
* the full sweep against the dominance-based early-reject filter.

All configurations must select the same design point as the seed's serial
``explore``.  The wall-clock assertion for the parallel backend only
applies on multi-core machines; single-core CI still checks parity,
cache-hit behaviour and the evaluation counts, which are deterministic.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.exploration import RSPDesignSpaceExplorer
from repro.core.rsp_params import enumerate_design_space
from repro.engine.cache import EvaluationCache
from repro.engine.executor import ExecutorConfig, run_exploration
from repro.kernels import paper_suite
from repro.mapping.profile import extract_profile
from repro.utils.tabulate import format_table


@pytest.fixture(scope="module")
def scaling_grid():
    grid = enumerate_design_space(
        max_rows_shared=7, max_cols_shared=7, stage_options=(1, 2, 3, 4)
    )
    assert len(grid) >= 200
    return grid


@pytest.fixture(scope="module")
def paper_explorer(mapper):
    profiles = {}
    for kernel in paper_suite():
        result = mapper.map_kernel(kernel, mapper.base)
        profiles[kernel.name] = extract_profile(result.base_schedule, result.dfg)
    return RSPDesignSpaceExplorer(profiles)


def timed_run(explorer, grid, **kwargs):
    started = time.perf_counter()
    outcome = run_exploration(explorer, candidates=grid, **kwargs)
    return outcome, time.perf_counter() - started


def test_engine_scaling_on_enlarged_grid(paper_explorer, scaling_grid, tmp_path):
    explorer, grid = paper_explorer, scaling_grid

    # Reference: the seed-equivalent serial sweep (facade semantics).
    serial, serial_seconds = timed_run(explorer, grid)
    reference_selected = serial.result.selected.parameters
    reference_front = [e.parameters for e in serial.result.pareto]

    # Parallel process backend.
    workers = min(4, os.cpu_count() or 1)
    parallel, parallel_seconds = timed_run(
        explorer,
        grid,
        config=ExecutorConfig(backend="process", workers=max(workers, 2), chunk_size=16),
    )

    # Cold then warm persistent cache.
    cache_path = tmp_path / "evals.jsonl"
    cold, cold_seconds = timed_run(explorer, grid, cache=EvaluationCache(cache_path))
    warm, warm_seconds = timed_run(explorer, grid, cache=EvaluationCache(cache_path))

    # Dominance-based early reject.
    rejecting, reject_seconds = timed_run(explorer, grid, early_reject=True)

    rows = [
        ["serial", serial.stats.evaluated, "-", "-", round(serial_seconds, 3)],
        [
            f"process x{parallel.stats.workers}",
            parallel.stats.evaluated,
            "-",
            "-",
            round(parallel_seconds, 3),
        ],
        ["cache cold", cold.stats.evaluated, cold.stats.cache_hits,
         cold.stats.cache_misses, round(cold_seconds, 3)],
        ["cache warm", warm.stats.evaluated, warm.stats.cache_hits,
         warm.stats.cache_misses, round(warm_seconds, 3)],
        ["early reject", rejecting.stats.evaluated, "-", "-", round(reject_seconds, 3)],
    ]
    print()
    print(
        format_table(
            rows,
            headers=["configuration", "evaluated", "hits", "misses", "seconds"],
            title=f"engine scaling over {len(grid)} candidates, nine-kernel domain",
        )
    )
    print(
        f"selected: {reference_selected.describe()}  "
        f"(front size {len(reference_front)}, early-rejected "
        f"{len(rejecting.rejected)} candidates)"
    )

    # Every configuration agrees with the seed-equivalent serial sweep.
    for outcome in (parallel, cold, warm, rejecting):
        assert outcome.result.selected.parameters == reference_selected
        assert [e.parameters for e in outcome.result.pareto] == reference_front

    # The warm cache serves the whole sweep without a single evaluation.
    assert warm.stats.evaluated == 0
    assert warm.stats.cache_misses == 0
    assert warm.stats.cache_hit_rate == 1.0
    assert warm_seconds < serial_seconds

    # Early reject prunes a substantial share of the expensive evaluations.
    assert rejecting.stats.early_rejected > len(grid) * 0.3
    assert rejecting.stats.evaluated < serial.stats.evaluated

    # The parallel backend evaluates the same jobs; on a multi-core host it
    # must also win on wall clock (meaningless under a single core, where
    # process workers just time-slice).
    assert parallel.stats.evaluated == serial.stats.evaluated
    if (os.cpu_count() or 1) >= 2:
        assert parallel_seconds < serial_seconds
