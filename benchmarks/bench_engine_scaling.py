"""Benchmark: engine scaling — executors, cache hits and early reject.

Runs the nine-kernel paper domain over an enlarged candidate grid
(``shr``/``shc`` in 0..7, pipeline stages in {1, 2, 3, 4} — 253
candidates) through the exploration engine and compares:

* the serial backend against the process-pool backend,
* a cold cache against a warm cache (the second sweep must be served
  entirely from the JSON-lines store),
* the full sweep against the dominance-based early-reject filter.

All configurations must select the same design point as the seed's serial
``explore``.  The wall-clock assertion for the parallel backend only
applies on multi-core machines; single-core CI still checks parity,
cache-hit behaviour and the evaluation counts, which are deterministic.
"""

from __future__ import annotations

import gc
import os
import time

import pytest

from repro.core.exploration import RSPDesignSpaceExplorer
from repro.core.rsp_params import enumerate_design_space
from repro.engine.cache import EvaluationCache
from repro.engine.executor import ExecutorConfig, run_exploration
from repro.kernels import paper_suite
from repro.mapping.profile import extract_profile
from repro.trace.collect import TraceCollector
from repro.utils.tabulate import format_table

#: Tracing must stay within this fraction of the untraced wall clock.
TRACE_OVERHEAD_CEILING = 0.05


@pytest.fixture(scope="module")
def scaling_grid():
    grid = enumerate_design_space(
        max_rows_shared=7, max_cols_shared=7, stage_options=(1, 2, 3, 4)
    )
    assert len(grid) >= 200
    return grid


@pytest.fixture(scope="module")
def paper_explorer(mapper):
    profiles = {}
    for kernel in paper_suite():
        result = mapper.map_kernel(kernel, mapper.base)
        profiles[kernel.name] = extract_profile(result.base_schedule, result.dfg)
    return RSPDesignSpaceExplorer(profiles)


def timed_run(explorer, grid, **kwargs):
    started = time.perf_counter()
    outcome = run_exploration(explorer, candidates=grid, **kwargs)
    return outcome, time.perf_counter() - started


def test_engine_scaling_on_enlarged_grid(paper_explorer, scaling_grid, tmp_path, bench_metrics):
    explorer, grid = paper_explorer, scaling_grid

    # Reference: the seed-equivalent serial sweep (facade semantics).
    # batch=False keeps this the per-candidate scalar baseline every
    # other configuration is compared against — the process backend
    # never batches, so racing it against a vectorized serial run would
    # compare worker fan-out to numpy, not to the seed.  The
    # batch-vs-scalar comparison has its own gated test below.
    serial, serial_seconds = timed_run(
        explorer, grid, config=ExecutorConfig(batch=False)
    )
    reference_selected = serial.result.selected.parameters
    reference_front = [e.parameters for e in serial.result.pareto]

    # Parallel process backend.
    workers = min(4, os.cpu_count() or 1)
    parallel, parallel_seconds = timed_run(
        explorer,
        grid,
        config=ExecutorConfig(backend="process", workers=max(workers, 2), chunk_size=16),
    )

    # Cold then warm persistent cache.
    cache_path = tmp_path / "evals.jsonl"
    cold, cold_seconds = timed_run(explorer, grid, cache=EvaluationCache(cache_path))
    warm, warm_seconds = timed_run(explorer, grid, cache=EvaluationCache(cache_path))

    # Dominance-based early reject.
    rejecting, reject_seconds = timed_run(explorer, grid, early_reject=True)

    bench_metrics.update(
        {
            "candidates": len(grid),
            "serial_seconds": round(serial_seconds, 6),
            "process_seconds": round(parallel_seconds, 6),
            "process_workers": parallel.stats.workers,
            "cache_cold_seconds": round(cold_seconds, 6),
            "cache_warm_seconds": round(warm_seconds, 6),
            "warm_hit_rate": warm.stats.cache_hit_rate,
            "early_reject_seconds": round(reject_seconds, 6),
            "early_rejected": rejecting.stats.early_rejected,
        }
    )

    rows = [
        ["serial", serial.stats.evaluated, "-", "-", round(serial_seconds, 3)],
        [
            f"process x{parallel.stats.workers}",
            parallel.stats.evaluated,
            "-",
            "-",
            round(parallel_seconds, 3),
        ],
        ["cache cold", cold.stats.evaluated, cold.stats.cache_hits,
         cold.stats.cache_misses, round(cold_seconds, 3)],
        ["cache warm", warm.stats.evaluated, warm.stats.cache_hits,
         warm.stats.cache_misses, round(warm_seconds, 3)],
        ["early reject", rejecting.stats.evaluated, "-", "-", round(reject_seconds, 3)],
    ]
    print()
    print(
        format_table(
            rows,
            headers=["configuration", "evaluated", "hits", "misses", "seconds"],
            title=f"engine scaling over {len(grid)} candidates, nine-kernel domain",
        )
    )
    print(
        f"selected: {reference_selected.describe()}  "
        f"(front size {len(reference_front)}, early-rejected "
        f"{len(rejecting.rejected)} candidates)"
    )

    # Every configuration agrees with the seed-equivalent serial sweep.
    for outcome in (parallel, cold, warm, rejecting):
        assert outcome.result.selected.parameters == reference_selected
        assert [e.parameters for e in outcome.result.pareto] == reference_front

    # The warm cache serves the whole sweep without a single evaluation.
    assert warm.stats.evaluated == 0
    assert warm.stats.cache_misses == 0
    assert warm.stats.cache_hit_rate == 1.0
    assert warm_seconds < serial_seconds

    # Early reject prunes a substantial share of the expensive evaluations.
    assert rejecting.stats.early_rejected > len(grid) * 0.3
    assert rejecting.stats.evaluated < serial.stats.evaluated

    # The parallel backend evaluates the same jobs; on a multi-core host it
    # must also win on wall clock (meaningless under a single core, where
    # process workers just time-slice).
    assert parallel.stats.evaluated == serial.stats.evaluated
    if (os.cpu_count() or 1) >= 2:
        assert parallel_seconds < serial_seconds


def test_tracing_overhead_stays_under_five_percent(
    paper_explorer, scaling_grid, tmp_path, bench_metrics
):
    """The acceptance bar for the trace layer: tracing the full
    253-candidate sweep costs <5% wall clock, and the resulting DB
    reproduces the run's wave/result/hit counts exactly.

    Measured on the scalar path (``batch=False``): the per-span cost is
    what's being bounded, so the denominator must be the per-candidate
    sweep the ceiling was calibrated against — the vectorized path
    shrinks the sweep ~7x while tracing cost stays fixed, which would
    turn this into a (meaningless) bound on numpy's speedup instead.
    The batch path's own tracing is one span per wave, strictly
    cheaper."""
    explorer, grid = paper_explorer, scaling_grid
    scalar = ExecutorConfig(batch=False)

    # One sweep is only a few hundred milliseconds, and scheduler
    # preemption inflates individual runs by 10-30% (measured CV ~9%)
    # while the timing floor — the true compute time — stays sharp.
    # So interleave untraced/traced runs (both sides see the same
    # machine load) and compare fastest-of-N: the minimum discards the
    # preempted runs entirely instead of averaging their noise into a
    # statistic that cannot resolve a 5% bar.  Alternating which side
    # runs first keeps a slow stretch from starving one side of a clean
    # run; the collector keeps running pairs until neither side's floor
    # has improved for ``patience`` consecutive pairs, so a drifting
    # host gets extra attempts instead of a fixed (and maybe unlucky)
    # sample count.  GC is paused inside the timed windows (and run
    # between them) so collection pauses — the traced side allocates
    # more — do not land on either clock.
    min_pairs, max_pairs, patience = 7, 25, 4
    untraced_times = []
    traced_times = []
    timed_run(explorer, grid, config=scalar)  # warm-up, discarded

    def timed_quiet(observer):
        gc.collect()
        gc.disable()
        try:
            return timed_run(explorer, grid, observer=observer, config=scalar)
        finally:
            gc.enable()

    with TraceCollector(tmp_path, campaign="overhead") as collector:
        observer = collector.observer("paper")
        pairs = stale = 0
        while pairs < min_pairs or (stale < patience and pairs < max_pairs):
            runs = [(untraced_times, None), (traced_times, observer)]
            if pairs % 2:
                runs.reverse()
            improved = False
            for times, wave_observer in runs:
                outcome, seconds = timed_quiet(wave_observer)
                improved = improved or not times or seconds < min(times)
                times.append(seconds)
                if wave_observer is not None:
                    traced = outcome
            stale = 0 if improved else stale + 1
            pairs += 1

    overhead = min(traced_times) / min(untraced_times) - 1.0
    print(
        f"\ntracing overhead: untraced {min(untraced_times):.3f}s, "
        f"traced {min(traced_times):.3f}s -> {100.0 * overhead:.2f}% "
        f"(fastest of {pairs} interleaved pairs, "
        f"{collector.spans_flushed} spans)"
    )
    bench_metrics.update(
        {
            "candidates": len(grid),
            "repeats": pairs,
            "untraced_seconds": round(min(untraced_times), 6),
            "traced_seconds": round(min(traced_times), 6),
            "overhead_fraction": round(overhead, 6),
            "spans_flushed": collector.spans_flushed,
        }
    )
    assert overhead < TRACE_OVERHEAD_CEILING, (
        f"tracing cost {100.0 * overhead:.2f}% wall clock "
        f"(ceiling {100.0 * TRACE_OVERHEAD_CEILING:.0f}%)"
    )

    # The DB reproduces the runs' counts exactly: every traced pair
    # sweeps the identical grid, so the totals are exact multiples of
    # one outcome.
    from repro.trace.collect import open_trace

    with open_trace(tmp_path) as db:
        assert db.counter("wave.count") == pairs * traced.stats.waves
        assert db.span_count("wave") == pairs * traced.stats.waves
        assert db.counter("result.count") == pairs * traced.stats.total_jobs
        assert db.counter("result.source.computed") == pairs * traced.stats.evaluated


#: The acceptance bar for the vectorized evaluation fast path.
BATCH_SPEEDUP_FLOOR = 5.0


def test_batch_evaluation_speedup_on_cold_grid(paper_explorer, scaling_grid, bench_metrics):
    """The acceptance bar for the vectorized wave evaluator: the numpy
    batch path runs the 253-candidate cold grid at least 5x faster than
    the scalar per-candidate walk, with byte-identical exploration
    results."""
    pytest.importorskip("numpy")
    from repro.utils.serialization import to_json

    explorer, grid = paper_explorer, scaling_grid
    scalar_config = ExecutorConfig(batch=False)
    batch_config = ExecutorConfig()

    # Warm-ups, discarded: first calls pay one-time costs on both sides
    # (numpy import and module caches) that are not the steady state a
    # campaign sees.  The timed batch runs still rebuild the evaluator's
    # profile tables every run — that cost is part of the fast path.
    scalar_reference, _ = timed_run(explorer, grid, config=scalar_config)
    batch_reference, _ = timed_run(explorer, grid, config=batch_config)

    # Interleaved fastest-of-N, same rationale as the tracing-overhead
    # test: the minimum discards scheduler preemption instead of
    # averaging it into a statistic that cannot resolve the 5x bar.
    scalar_times = []
    batch_times = []
    for repeat in range(5):
        runs = [(scalar_times, scalar_config), (batch_times, batch_config)]
        if repeat % 2:
            runs.reverse()
        for times, config in runs:
            gc.collect()
            gc.disable()
            try:
                _, seconds = timed_run(explorer, grid, config=config)
            finally:
                gc.enable()
            times.append(seconds)

    speedup = min(scalar_times) / min(batch_times)
    print(
        f"\nbatch evaluation: scalar {min(scalar_times):.3f}s, "
        f"batch {min(batch_times):.3f}s -> {speedup:.1f}x "
        f"({batch_reference.stats.batch_evaluations} batched evaluations)"
    )
    bench_metrics.update(
        {
            "candidates": len(grid),
            "scalar_seconds": round(min(scalar_times), 6),
            "batch_seconds": round(min(batch_times), 6),
            "speedup": round(speedup, 3),
            "batch_evaluations": batch_reference.stats.batch_evaluations,
        }
    )

    # Every candidate except the up-front base point went through the
    # vectorized path; the scalar run batched nothing.
    assert scalar_reference.stats.batch_evaluations == 0
    assert batch_reference.stats.batch_evaluations == len(grid) - 1
    assert batch_reference.stats.evaluated == scalar_reference.stats.evaluated

    # The fast path changes throughput, never results: the exploration
    # outcomes serialise byte-identically.
    assert to_json(batch_reference.result) == to_json(scalar_reference.result)

    assert speedup >= BATCH_SPEEDUP_FLOOR, (
        f"batch path {speedup:.2f}x over scalar "
        f"(floor {BATCH_SPEEDUP_FLOOR:.0f}x)"
    )
