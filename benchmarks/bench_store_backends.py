"""Benchmark: storage-backend throughput and compaction payoff.

Times ``put``/``get`` over the three :mod:`repro.store` backends on a
synthetic record population shaped like real evaluation-cache traffic
(small flat JSON objects, content-hash keys), prints a throughput table,
and asserts the structural claims the storage layer makes:

* sharding never changes results — a sharded store returns exactly the
  records an unsharded one does,
* warm ``get`` throughput is strictly positive for every backend and the
  in-memory backend is the fastest (sanity ordering),
* compacting a duplicate-heavy JSONL store shrinks the shard files while
  preserving every record.
"""

from __future__ import annotations

import hashlib
import json
import time

from repro.store import MemoryBackend, PickleDirBackend, ShardedJsonlBackend
from repro.utils.tabulate import format_table

RECORDS = 400
#: Duplicate append factor for the compaction benchmark (simulates racing
#: writers re-recording the same content-hashed results).
DUPLICATES = 3


def record_key(index: int) -> str:
    return hashlib.sha256(f"record-{index}".encode()).hexdigest()


def payload(index: int) -> dict:
    return {"label": f"rsp(shr={index % 3})", "area_slices": float(index), "stalls": index % 7}


def timed(function) -> float:
    started = time.perf_counter()
    function()
    return time.perf_counter() - started


def populate(backend) -> float:
    return timed(
        lambda: [backend.put("ns", record_key(i), payload(i)) for i in range(RECORDS)]
    )


def read_all(backend) -> float:
    return timed(lambda: [backend.get("ns", record_key(i)) for i in range(RECORDS)])


def test_backend_throughput_table(tmp_path):
    rows = []
    reads = {}
    for label, backend in (
        ("memory", MemoryBackend()),
        ("jsonl x1", ShardedJsonlBackend(tmp_path / "flat.jsonl")),
        ("jsonl x8", ShardedJsonlBackend(tmp_path / "sharded.jsonl", num_shards=8)),
        ("pickle x1", PickleDirBackend(tmp_path / "flat")),
        ("pickle x8", PickleDirBackend(tmp_path / "sharded", num_shards=8)),
    ):
        put_seconds = populate(backend)
        get_seconds = read_all(backend)
        reads[label] = get_seconds
        rows.append(
            [
                label,
                RECORDS,
                round(RECORDS / put_seconds),
                round(RECORDS / get_seconds),
                backend.stats().disk_bytes,
            ]
        )
        assert backend.stats().hits == RECORDS
    print()
    print(
        format_table(
            rows,
            headers=["backend", "records", "puts/s", "gets/s", "disk B"],
            title="store backend throughput",
        )
    )
    assert min(reads.values()) > 0
    # Warm jsonl reads are in-memory dict lookups, so they tie with the
    # memory backend; pickle re-reads the disk and must be the slow one.
    assert reads["memory"] < reads["pickle x1"]


def test_sharded_and_unsharded_stores_agree(tmp_path):
    flat = ShardedJsonlBackend(tmp_path / "records.jsonl")
    for index in range(RECORDS):
        flat.put("ns", record_key(index), payload(index))
    sharded = ShardedJsonlBackend(tmp_path / "records.jsonl", num_shards=8)
    for index in range(RECORDS):
        hit, record = sharded.get("ns", record_key(index))
        assert hit
        assert {name: record[name] for name in payload(index)} == payload(index)


def test_compaction_shrinks_a_duplicate_heavy_store(tmp_path):
    path = tmp_path / "records.jsonl"
    backend = ShardedJsonlBackend(path, num_shards=4)
    for index in range(RECORDS):
        backend.put("", record_key(index), payload(index))
    # Simulate racing writers: every record re-appended DUPLICATES times.
    with path.open("a", encoding="utf-8") as handle:
        for _ in range(DUPLICATES):
            for index in range(RECORDS):
                handle.write(
                    json.dumps({**payload(index), "key": record_key(index)}) + "\n"
                )

    def shard_bytes(store):
        return sum(
            store.shard_path(i).stat().st_size
            for i in range(store.num_shards)
            if store.shard_path(i).exists()
        )

    dirty = ShardedJsonlBackend(path, num_shards=4)
    before = shard_bytes(dirty)
    elapsed = timed(dirty.compact)
    after = shard_bytes(dirty)
    print(f"\ncompaction: {before} B -> {after} B in {elapsed * 1000:.1f} ms")
    assert after < before / 2  # the duplicate appends dominate and are gone
    compacted = ShardedJsonlBackend(path, num_shards=4)
    assert len(compacted) == RECORDS
    assert compacted.corrupt_lines == 0
