"""Benchmark: the coordinator protocol over the wire.

Measures the pure coordination cost of the fleet path — submit, then
``lease → heartbeat → complete`` cycles against a live
:class:`~repro.service.StoreServer` with a
:class:`~repro.service.CampaignCoordinator` — with synthetic evaluation
records, so no mapper or cost model noise lands in the numbers.  The
structural claims:

* one worker sustains a healthy cycle rate (every cycle is three HTTP
  round trips plus a checkpoint save, so tens per second is the floor
  that keeps coordination overhead invisible next to real wave
  evaluation, which runs seconds per wave),
* four concurrent workers complete every wave exactly once — the lease
  state machine serialises the queue without losing or double-running
  waves under contention.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.engine.jobs import CampaignSpec
from repro.engine.worker import CoordinatorClient
from repro.service import CampaignCoordinator, StoreServer
from repro.store import MemoryBackend
from repro.utils.tabulate import format_table

#: One worker must sustain at least this many lease->complete cycles/s.
CYCLE_RATE_FLOOR = 25.0
FLEET_WORKERS = 4


def fleet_spec(name: str) -> CampaignSpec:
    return CampaignSpec(
        name=name,
        suites=("dsp", "h264"),
        max_rows_shared=1,
        max_cols_shared=1,
        chunk_size=2,
    )


def fake_records(grant: dict) -> dict:
    return {
        f"{grant['suite']}-{grant['wave']}-{index}": {
            "label": f"rsp({index})",
            "area_slices": float(index),
            "stalls": {},
        }
        for index in grant["indices"]
    }


def drain(client: CoordinatorClient, campaign: str, worker: str, heartbeat: bool):
    cycles = 0
    while True:
        grant = client.lease(campaign, worker)
        if grant["status"] == "complete":
            return cycles
        if grant["status"] == "wait":
            time.sleep(min(0.01, float(grant.get("retry_after", 0.01))))
            continue
        if heartbeat:
            client.heartbeat(campaign, grant["lease"])
        client.complete(
            campaign, grant["lease"], grant["suite"], grant["wave"], fake_records(grant)
        )
        cycles += 1


@pytest.fixture()
def fleet_server(tmp_path):
    coordinator = CampaignCoordinator(tmp_path / "coord")
    with StoreServer(MemoryBackend(), coordinator=coordinator) as live:
        yield live, coordinator
    coordinator.close()


def test_coordinator_cycle_throughput(fleet_server, bench_metrics):
    server, coordinator = fleet_server
    rows = []

    # Serial: one worker, one socket, wave_size=1 maximises cycle count.
    client = CoordinatorClient(server.url)
    campaign = client.submit(fleet_spec("bench-serial").as_payload(), wave_size=1)[
        "campaign"
    ]
    worker = client.register(campaign, "bench")["worker"]
    started = time.perf_counter()
    cycles = drain(client, campaign, worker, heartbeat=True)
    serial_seconds = time.perf_counter() - started
    client.close()
    serial_rate = cycles / serial_seconds
    rows.append(["serial x1", cycles, round(serial_rate, 1)])
    bench_metrics["serial_cycles_per_s"] = round(serial_rate, 1)

    # Contended: four workers racing one queue.
    fleet_campaign = CoordinatorClient(server.url).submit(
        fleet_spec("bench-fleet").as_payload(), wave_size=1
    )["campaign"]
    counts = {}

    def run(tag):
        worker_client = CoordinatorClient(server.url)
        worker_id = worker_client.register(fleet_campaign, tag)["worker"]
        counts[tag] = drain(worker_client, fleet_campaign, worker_id, heartbeat=False)
        worker_client.close()

    threads = [
        threading.Thread(target=run, args=(f"w{i}",)) for i in range(FLEET_WORKERS)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
    fleet_seconds = time.perf_counter() - started
    fleet_cycles = sum(counts.values())
    fleet_rate = fleet_cycles / fleet_seconds
    rows.append([f"fleet x{FLEET_WORKERS}", fleet_cycles, round(fleet_rate, 1)])
    bench_metrics["fleet_cycles_per_s"] = round(fleet_rate, 1)

    print()
    print(
        format_table(
            rows,
            headers=["workers", "cycles", "cycles/s"],
            title="coordinator lease->complete throughput (live HTTP)",
        )
    )

    status = coordinator.status(fleet_campaign)
    assert status["complete"] is True
    assert status["waves"]["done"] == fleet_cycles  # exactly-once under contention
    assert status["requeues"] == 0
    assert serial_rate >= CYCLE_RATE_FLOOR
