"""Benchmark: staged mapping pipeline — cold vs. warm artifact store.

Runs the paper-suite campaign twice against the same artifact store and
compares the per-stage mapping timings from the campaign report (the same
numbers ``python -m repro.engine`` emits in its JSON report):

* the cold run computes every base schedule and profile and persists them,
* the warm run fetches the profiles by content hash — the scheduling
  stages must not execute at all and the mapping stages as a whole must
  be at least 3x faster,
* the flow outputs must be seed-identical either way (same selections,
  same cycle counts).
"""

from __future__ import annotations

import pytest

from repro.engine.artifacts import ArtifactStore
from repro.engine.jobs import CampaignSpec
from repro.engine.runner import CampaignRunner
from repro.flow import run_rsp_flow
from repro.kernels import paper_suite
from repro.utils.tabulate import format_table

#: Stages whose work a warm store must eliminate ("mapping stages": the
#: scheduling and profiling work, as opposed to the cheap DFG rebuild that
#: anchors the content hashes).
MAPPING_STAGES = ("base_schedule", "extract_profile", "rearrange", "generate_context")


@pytest.fixture(scope="module")
def spec():
    return CampaignSpec(name="pipeline-bench", suites=("paper",))


def mapping_stage_seconds(report) -> float:
    return sum(
        timing["seconds"]
        for stage, timing in report.mapping_stages.items()
        if stage in MAPPING_STAGES
    )


def test_warm_artifact_store_speeds_up_mapping_3x(spec, tmp_path):
    artifact_dir = tmp_path / "store"
    cold, cold_results = CampaignRunner(spec, artifact_dir=artifact_dir).run()
    warm, warm_results = CampaignRunner(spec, artifact_dir=artifact_dir).run()

    rows = []
    for label, report in (("cold", cold), ("warm", warm)):
        for stage, timing in report.mapping_stages.items():
            rows.append(
                [label, stage, timing["hits"], timing["misses"], round(timing["seconds"], 4)]
            )
    print()
    print(
        format_table(
            rows,
            headers=["run", "stage", "hits", "misses", "seconds"],
            title="mapping pipeline: cold vs. warm artifact store (paper suite)",
        )
    )

    cold_mapping = mapping_stage_seconds(cold)
    warm_mapping = mapping_stage_seconds(warm)
    speedup = cold_mapping / warm_mapping if warm_mapping else float("inf")
    print(
        f"mapping stages: cold {cold_mapping:.3f}s -> warm {warm_mapping:.3f}s "
        f"({speedup:.1f}x), warm artifact hits {warm.artifact_hits}"
    )

    # The warm run is served from the store: profiles fetched, scheduling
    # stages never executed.
    assert warm.artifact_hits > 0
    assert warm.artifact_misses == 0
    assert "base_schedule" not in warm.mapping_stages
    assert warm.mapping_stages["extract_profile"]["misses"] == 0

    # Identical exploration outcomes.
    assert [s.selected for s in warm.suites] == [s.selected for s in cold.suites]
    cold_front = [e.parameters for e in cold_results["paper"].pareto]
    warm_front = [e.parameters for e in warm_results["paper"].pareto]
    assert warm_front == cold_front

    # The headline claim: >= 3x on the mapping stages (observed ~20x; the
    # margin absorbs slow CI machines).
    assert warm_mapping * 3 <= cold_mapping


def test_flow_output_is_identical_with_and_without_artifact_store(tmp_path):
    kernels = paper_suite()
    plain = run_rsp_flow(kernels)

    store_dir = tmp_path / "flow-store"
    cold = run_rsp_flow(kernels, artifact_store=ArtifactStore(store_dir))
    warm = run_rsp_flow(kernels, artifact_store=ArtifactStore(store_dir))

    for outcome in (cold, warm):
        assert outcome.selected_name == plain.selected_name
        assert outcome.total_base_cycles() == plain.total_base_cycles()
        assert outcome.total_selected_cycles() == plain.total_selected_cycles()
        assert outcome.profiles == plain.profiles
        assert {
            name: (result.cycles, result.stall_cycles)
            for name, result in outcome.rsp_mappings.items()
        } == {
            name: (result.cycles, result.stall_cycles)
            for name, result in plain.rsp_mappings.items()
        }
