"""Extension benchmark: the H.264 kernels the paper names as future work.

Runs the RSP exploration and the per-design mapping for the H.264 pair
(4x4 integer transform + six-tap half-pel interpolation) and checks that
the paper's conclusions carry over to the new domain: the multiplier-free
transform gains the full clock benefit, the interpolation filter needs the
#2 sharing topology to run without stalls, and the selected design shares
the multiplier.
"""

from __future__ import annotations

from repro.core import TimingModel
from repro.arch import base_architecture, paper_architectures
from repro.eval.metrics import execution_time_ns
from repro.flow import run_rsp_flow
from repro.kernels.h264 import h264_kernels
from repro.utils.tabulate import format_table


def evaluate_h264_domain(mapper, timing_model):
    rows = []
    base = base_architecture()
    for kernel in h264_kernels():
        base_result = mapper.map_kernel(kernel, base)
        base_time = execution_time_ns(base_result.cycles, timing_model.critical_path_ns(base))
        for spec in paper_architectures():
            result = mapper.map_kernel(kernel, spec)
            period = timing_model.critical_path_ns(spec)
            time = execution_time_ns(result.cycles, period)
            rows.append(
                [
                    kernel.name,
                    spec.name,
                    result.cycles,
                    result.stall_cycles,
                    round(time, 1),
                    round(100.0 * (base_time - time) / base_time, 2),
                ]
            )
    return rows


def test_h264_future_work_domain(benchmark, mapper, timing_model):
    rows = benchmark.pedantic(
        evaluate_h264_domain, args=(mapper, timing_model), rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            rows,
            headers=["kernel", "design", "cycles", "stalls", "ET (ns)", "DR (%)"],
            title="H.264 extension kernels on the nine paper architectures",
        )
    )
    by_key = {(row[0], row[1]): row for row in rows}
    # The multiplier-free transform improves by the full clock gain on RSP#1.
    assert by_key[("H264-IT4x4", "RSP#1")][5] > 30.0
    assert by_key[("H264-IT4x4", "RSP#1")][3] == 0
    # The interpolation filter stalls badly on RS#1, barely on RSP#2.
    assert by_key[("H264-QPEL", "RS#1")][3] > 0
    assert by_key[("H264-QPEL", "RSP#2")][3] <= 1
    assert by_key[("H264-QPEL", "RSP#2")][3] < by_key[("H264-QPEL", "RS#1")][3]
    # The domain-level exploration still selects a sharing design.
    outcome = run_rsp_flow(h264_kernels())
    assert outcome.exploration.selected is not None
    assert outcome.exploration.selected.parameters.uses_sharing
