"""Benchmark: regenerate paper Figure 8 (the four RS/RSP sharing topologies).

Instantiates the structural arrays of RS/RSP #1-#4, prints their ASCII
renderings and checks the shared-multiplier counts and reachability.
"""

from __future__ import annotations

from repro.arch import paper_architectures, rs_architecture, rsp_architecture
from repro.eval.figures import render_sharing_topology

#: Total shared multipliers of designs #1..#4 on the 8x8 array (Figure 8).
EXPECTED_TOTALS = {1: 8, 2: 16, 3: 24, 4: 32}


def build_all_topologies():
    return {spec.name: spec.build_array() for spec in paper_architectures()}


def test_fig8_sharing_topologies(benchmark):
    arrays = benchmark(build_all_topologies)
    print()
    for spec in paper_architectures():
        print(render_sharing_topology(spec))
        print()
    assert arrays["Base"].num_shared_units == 0
    for design, expected_total in EXPECTED_TOTALS.items():
        rs_array = arrays[f"RS#{design}"]
        rsp_array = arrays[f"RSP#{design}"]
        assert rs_array.num_shared_units == expected_total
        assert rsp_array.num_shared_units == expected_total
        assert all(not unit.is_pipelined for unit in rs_array.shared_units)
        assert all(unit.pipeline_stages == 2 for unit in rsp_array.shared_units)
        # Every PE reaches exactly rows_shared + cols_shared multipliers.
        spec = rs_architecture(design)
        expected_ports = spec.sharing.ports_per_pe()
        for row in range(8):
            for col in range(8):
                assert len(rs_array.reachable_shared_units(row, col)) == expected_ports
