"""Benchmark: the RSP design-space exploration flow (paper Figure 7 / Section 4).

Profiles the full kernel suite on the base architecture, sweeps the RSP
parameter space, applies the Eq. 2 cost constraint, keeps the Pareto
points and selects a design for the domain.
"""

from __future__ import annotations

from repro.core import RSPDesignSpaceExplorer
from repro.eval.figures import render_exploration_flow, render_pareto_plot
from repro.kernels import paper_suite
from repro.mapping.profile import extract_profile
from repro.utils.tabulate import format_table


def run_exploration(mapper):
    profiles = {}
    for kernel in paper_suite():
        schedule = mapper.base_schedule(kernel)
        profiles[kernel.name] = extract_profile(schedule, mapper.build_dfg(kernel))
    explorer = RSPDesignSpaceExplorer(profiles)
    return explorer.explore()


def test_fig7_design_space_exploration(benchmark, mapper):
    result = benchmark.pedantic(run_exploration, args=(mapper,), rounds=1, iterations=1)
    print()
    print(render_exploration_flow())
    print()
    print(
        format_table(
            result.summary_rows(),
            headers=["design", "kind", "area", "delay", "cycles", "ET(ns)", "stalls", "pareto", "selected"],
            title="RSP exploration over the nine-kernel domain",
        )
    )
    print()
    print(render_pareto_plot(result.evaluated, result.pareto))

    # Every feasible sharing design respects the Eq. 2 area constraint.
    for evaluation in result.feasible:
        if evaluation.parameters.kind != "base":
            assert evaluation.area_slices < result.base.area_slices
    # The Pareto front is non-trivial and the selected design shares the
    # multiplier (the domain is multiplication heavy).
    assert len(result.pareto) >= 2
    assert result.selected is not None
    assert result.selected.parameters.uses_sharing
    # Pipelined candidates dominate their combinational counterparts on
    # execution time at equal sharing (they run at a faster clock).
    by_description = {evaluation.parameters.describe(): evaluation for evaluation in result.evaluated}
    rs2 = by_description["rs(shr=2,shc=0,stages=1)"]
    rsp2 = by_description["rsp(shr=2,shc=0,stages=2)"]
    assert rsp2.total_execution_time_ns < rs2.total_execution_time_ns
