"""Benchmark: regenerate paper Table 5 (2D-FDCT, SAD, MVM and FFT).

Reports cycles, execution time, delay reduction and stalls for the DSP
kernels on every paper architecture.
"""

from __future__ import annotations

from repro.eval.tables import format_performance_table, table5_dsp


def test_table5_dsp_kernels(benchmark, mapper, timing_model):
    table = benchmark.pedantic(
        table5_dsp, kwargs={"mapper": mapper, "timing_model": timing_model},
        rounds=1, iterations=1,
    )
    print()
    print(format_performance_table(table))
    assert table.kernels == ["2D-FDCT", "SAD", "MVM", "FFT"]

    # SAD has no multiplications: identical cycle counts everywhere, and the
    # largest improvement of all kernels on the RSP designs (paper: 35.7%).
    sad_cycles = {arch: table.record("SAD", arch).cycles for arch in table.architectures}
    assert len(set(sad_cycles.values())) == 1
    sad_best = table.best_delay_reduction("SAD")
    assert sad_best.architecture == "RSP#1"
    assert 25.0 <= sad_best.delay_reduction <= 45.0

    # 2D-FDCT is the stress case for sharing: RS#1 stalls badly, RS#2 less,
    # and the RSP designs need fewer stalls than their RS counterparts.
    fdct_rs1 = table.record("2D-FDCT", "RS#1")
    fdct_rs2 = table.record("2D-FDCT", "RS#2")
    assert fdct_rs1.stalls > fdct_rs2.stalls > 0
    assert table.record("2D-FDCT", "RSP#2").stalls <= fdct_rs2.stalls

    # MVM and FFT improve on RSP#2 (the paper's selected design).
    assert table.record("MVM", "RSP#2").delay_reduction > 0
    assert table.record("FFT", "RSP#2").delay_reduction > 0
