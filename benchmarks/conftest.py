"""Shared fixtures and the report mode of the benchmark harness.

Every benchmark regenerates one table or figure of the paper and prints the
reproduced rows next to the published values (run with ``-s`` to see them).
The mapper is session-scoped so base schedules are computed only once per
benchmark session.

Report mode: ``--bench-report PATH`` writes a JSON document with one entry
per benchmark test (outcome, call duration) plus any named metrics the
test recorded through the ``bench_metrics`` fixture.  CI runs the
benchmark suite in this mode and uploads the document as a per-PR
artifact, so the performance trajectory accumulates instead of vanishing
with each job log.
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path
from typing import Dict

import pytest

from repro.core import HardwareCostModel, TimingModel
from repro.mapping import RSPMapper
from repro.synthesis import SynthesisSurrogate

#: nodeid -> {"outcome": ..., "duration": ...} of every call phase.
_RESULTS: Dict[str, Dict[str, object]] = {}
#: nodeid -> metrics dict recorded via the ``bench_metrics`` fixture.
_METRICS: Dict[str, Dict[str, object]] = {}


def pytest_addoption(parser):
    parser.addoption(
        "--bench-report",
        default=None,
        metavar="PATH",
        help="write a JSON benchmark report (per-test durations + recorded "
        "metrics) to PATH at the end of the session",
    )


@pytest.fixture()
def bench_metrics(request) -> Dict[str, object]:
    """A per-test dict; everything put here lands in the bench report."""
    return _METRICS.setdefault(request.node.nodeid, {})


def pytest_runtest_logreport(report):
    if report.when == "call":
        _RESULTS[report.nodeid] = {
            "outcome": report.outcome,
            "duration_seconds": round(report.duration, 6),
        }
    elif report.when == "setup" and report.outcome != "passed":
        # A test skipped or failed during fixture setup never reaches the
        # call phase; record it anyway so it cannot silently vanish from
        # the trajectory.
        _RESULTS[report.nodeid] = {
            "outcome": report.outcome,
            "duration_seconds": 0.0,
        }


def pytest_sessionfinish(session, exitstatus):
    path = session.config.getoption("--bench-report", default=None)
    if not path:
        return
    tests = {
        nodeid: {**result, "metrics": _METRICS.get(nodeid, {})}
        for nodeid, result in sorted(_RESULTS.items())
    }
    payload = {
        "exit_status": int(exitstatus),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "tests": tests,
    }
    report_path = Path(path)
    report_path.parent.mkdir(parents=True, exist_ok=True)
    report_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="session")
def mapper():
    return RSPMapper()


@pytest.fixture(scope="session")
def timing_model():
    return TimingModel()


@pytest.fixture(scope="session")
def cost_model():
    return HardwareCostModel()


@pytest.fixture(scope="session")
def surrogate():
    return SynthesisSurrogate()
