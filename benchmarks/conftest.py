"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and prints the
reproduced rows next to the published values (run with ``-s`` to see them).
The mapper is session-scoped so base schedules are computed only once per
benchmark session.
"""

from __future__ import annotations

import pytest

from repro.core import HardwareCostModel, TimingModel
from repro.mapping import RSPMapper
from repro.synthesis import SynthesisSurrogate


@pytest.fixture(scope="session")
def mapper():
    return RSPMapper()


@pytest.fixture(scope="session")
def timing_model():
    return TimingModel()


@pytest.fixture(scope="session")
def cost_model():
    return HardwareCostModel()


@pytest.fixture(scope="session")
def surrogate():
    return SynthesisSurrogate()
