"""Ablation: row data-bus bandwidth.

The paper's base architecture gives every row two read buses and one write
bus.  This ablation varies the number of read buses and shows how the
memory bandwidth bounds the achievable multiplications per cycle (the
"Mult No" of Table 3) and the base cycle count of the MAC-style kernels.
"""

from __future__ import annotations

from repro.arch import ArchitectureSpec, ArraySpec, RowBusSpec
from repro.kernels import get_kernel
from repro.mapping import LoopPipeliningScheduler
from repro.utils.tabulate import format_table


def architecture_with_read_buses(read_buses: int) -> ArchitectureSpec:
    return ArchitectureSpec(
        name=f"Base/{read_buses}rd",
        array=ArraySpec(rows=8, cols=8, row_buses=RowBusSpec(read_buses=read_buses, write_buses=1)),
    )


def sweep_bus_bandwidth():
    rows = []
    kernels = {name: get_kernel(name) for name in ("Inner product", "MVM")}
    dfgs = {name: kernel.build() for name, kernel in kernels.items()}
    for read_buses in (1, 2, 4, 8):
        spec = architecture_with_read_buses(read_buses)
        row = [spec.name, read_buses]
        for name in ("Inner product", "MVM"):
            schedule = LoopPipeliningScheduler(spec).schedule(dfgs[name], kernel_name=name)
            row.extend([schedule.length, schedule.max_multiplications_per_cycle()])
        rows.append(row)
    return rows


def test_ablation_bus_bandwidth(benchmark):
    rows = benchmark.pedantic(sweep_bus_bandwidth, rounds=1, iterations=1)
    print()
    print(
        format_table(
            rows,
            headers=["design", "read buses/row", "InnerP cycles", "InnerP mult/cyc",
                     "MVM cycles", "MVM mult/cyc"],
            title="Ablation: read-bus bandwidth vs. multiplication throughput",
        )
    )
    by_buses = {row[1]: row for row in rows}
    # With the paper's two read buses the MAC kernels reach 8 mults/cycle.
    assert by_buses[2][3] == 8
    assert by_buses[2][5] == 8
    # Halving the bandwidth halves the sustainable multiplication rate and
    # lengthens the schedule; adding bandwidth shortens it.
    assert by_buses[1][3] <= 5
    assert by_buses[1][2] > by_buses[2][2]
    assert by_buses[8][2] <= by_buses[2][2]
    assert by_buses[8][3] >= by_buses[2][3]
