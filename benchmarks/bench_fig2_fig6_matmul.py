"""Benchmark: regenerate paper Figures 2 and 6 (matrix-multiplication schedules).

Figure 2: loop-pipelined schedule of an order-4 matrix multiplication on a
4x4 array with combinational multipliers — at its peak the whole array
multiplies at once, so many multipliers must be provisioned.  Figure 6: the
same kernel when the multiplier is pipelined into two stages — new
multiplications start at most one per column per cycle, so one shared
pipelined multiplier per row (4 in total) suffices.

The paper's figure assumes the operands are already staged at the PEs, so
this benchmark gives the small 4x4 array generous row buses (4 read buses
per row); the bus-bandwidth ablation covers the bandwidth-limited case.
"""

from __future__ import annotations

from repro.arch import ArchitectureSpec, ArraySpec, PipeliningSpec, RowBusSpec, SharingTopology
from repro.eval.figures import render_schedule_figure
from repro.kernels import matrix_multiplication_column
from repro.mapping.loop_pipelining import LoopPipeliningScheduler

_BUSES = RowBusSpec(read_buses=4, write_buses=1)

BASE_4X4 = ArchitectureSpec(
    name="Base-4x4", array=ArraySpec(rows=4, cols=4, row_buses=_BUSES)
)
RSP1_4X4 = ArchitectureSpec(
    name="RSP#1-4x4",
    array=ArraySpec(rows=4, cols=4, row_buses=_BUSES),
    sharing=SharingTopology(rows_shared=1, cols_shared=0),
    pipelining=PipeliningSpec(stages=2),
)


def schedule_matmul_on(architecture):
    kernel = matrix_multiplication_column(order=4)
    return LoopPipeliningScheduler(architecture).schedule(kernel.build(), kernel_name=kernel.name)


def test_fig2_base_matmul_schedule(benchmark):
    schedule = benchmark(schedule_matmul_on, BASE_4X4)
    print()
    print(render_schedule_figure(schedule))
    schedule.validate(matrix_multiplication_column(order=4).build())
    # Figure 2's observation: with combinational multipliers many PEs
    # multiply in the same cycle, so at least 8 multipliers are needed to
    # avoid stalling the 4x4 array.
    assert schedule.max_multiplications_per_cycle() >= 8


def test_fig6_pipelined_matmul_schedule(benchmark):
    schedule = benchmark(schedule_matmul_on, RSP1_4X4)
    print()
    print(render_schedule_figure(schedule))
    # Figure 6's observation: with the two-stage shared multiplier at most
    # one new multiplication starts per column per cycle, so the four
    # row-shared multipliers sustain the kernel without stalls.
    assert schedule.max_multiplication_issues_per_cycle() <= 4
    base_schedule = schedule_matmul_on(BASE_4X4)
    # The pipelined schedule is only marginally longer than the base one.
    assert schedule.length <= base_schedule.length + 6


def test_fig2_vs_fig6_multiplier_requirement(benchmark):
    """Quantify the figure pair's headline: pipelining at least halves the multipliers needed."""

    def concurrent_requirements():
        base_schedule = schedule_matmul_on(BASE_4X4)
        rsp_schedule = schedule_matmul_on(RSP1_4X4)
        return (
            base_schedule.max_multiplications_per_cycle(),
            rsp_schedule.max_multiplication_issues_per_cycle(),
        )

    base_need, rsp_need = benchmark(concurrent_requirements)
    print(f"\ncombinational multipliers needed: {base_need}, pipelined multiplier issue slots: {rsp_need}")
    assert rsp_need <= base_need // 2
