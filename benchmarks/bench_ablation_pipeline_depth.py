"""Ablation: number of multiplier pipeline stages.

The paper fixes the RSP multiplier at two stages.  This ablation sweeps
1-4 stages at the RSP#2 sharing topology and reports the clock period,
per-kernel cycle counts and total execution time, exposing the diminishing
returns the paper alludes to ("multiplications take multiple cycles in the
RSP architectures").
"""

from __future__ import annotations

from repro.arch import rsp_architecture, rs_architecture
from repro.core import TimingModel
from repro.kernels import get_kernel
from repro.utils.tabulate import format_table

KERNELS = ("Hydro", "MVM", "2D-FDCT", "SAD")


def sweep_pipeline_depth(mapper, timing_model):
    rows = []
    for stages in (1, 2, 3, 4):
        if stages == 1:
            spec = rs_architecture(2)
        else:
            spec = rsp_architecture(2, stages=stages).with_name(f"RSP#2/{stages}stage")
        period = timing_model.critical_path_ns(spec)
        total_time = 0.0
        cycle_counts = []
        for name in KERNELS:
            result = mapper.map_kernel(get_kernel(name), spec)
            cycle_counts.append(result.cycles)
            total_time += result.cycles * period
        rows.append([spec.name, stages, round(period, 2)] + cycle_counts + [round(total_time, 1)])
    return rows


def test_ablation_pipeline_depth(benchmark, mapper, timing_model):
    rows = benchmark.pedantic(
        sweep_pipeline_depth, args=(mapper, timing_model), rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            rows,
            headers=["design", "stages", "period (ns)"] + [f"{k} cyc" for k in KERNELS] + ["total ET (ns)"],
            title="Ablation: multiplier pipeline depth at the #2 sharing topology",
        )
    )
    periods = [row[2] for row in rows]
    totals = [row[-1] for row in rows]
    # The clock period shrinks monotonically with deeper pipelining...
    assert periods == sorted(periods, reverse=True)
    # ...and two stages already capture most of the execution-time benefit:
    # the paper's choice of a two-stage multiplier is the knee of the curve.
    assert totals[1] < totals[0]
    gain_stage2 = totals[0] - totals[1]
    gain_stage4 = max(0.0, totals[1] - totals[3])
    assert gain_stage2 > gain_stage4
