"""Benchmark: the store service over the wire, batched vs per-key.

Runs the PR 3 storage workload (small flat JSON records under
content-hash keys) against three backends sharing one live
:class:`~repro.service.StoreServer`:

* ``local`` — a :class:`ShardedJsonlBackend` on disk (the baseline),
* ``remote`` — a :class:`RemoteBackend` over HTTP,
* ``tiered`` — a :class:`TieredBackend` front over that remote.

and asserts the structural claims the service layer makes:

* batched ``put_many`` (one ``mput`` round trip) beats per-key ``put``
  (one HTTP request per record) by at least 3x over the same socket,
* batched ``get_many`` beats per-key ``get`` over the wire,
* warm tiered reads (served from the memory front) beat remote reads,
  because they never touch the socket at all.
"""

from __future__ import annotations

import hashlib
import time

import pytest

from repro.service import StoreServer
from repro.store import RemoteBackend, ShardedJsonlBackend, TieredBackend
from repro.utils.tabulate import format_table

RECORDS = 300
SHARDS = 4
#: Batched mput must beat per-key puts by at least this factor.
MPUT_SPEEDUP_FLOOR = 3.0


def record_key(tag: str, index: int) -> str:
    return hashlib.sha256(f"{tag}-record-{index}".encode()).hexdigest()


def payload(index: int) -> dict:
    return {"label": f"rsp(shr={index % 3})", "area_slices": float(index), "stalls": index % 7}


def timed(function) -> float:
    started = time.perf_counter()
    function()
    return time.perf_counter() - started


@pytest.fixture()
def server(tmp_path):
    with StoreServer(
        ShardedJsonlBackend(tmp_path / "service.jsonl", num_shards=SHARDS)
    ) as live:
        yield live


def test_remote_backend_throughput_table(server, tmp_path, bench_metrics):
    rows = []
    clients = {}
    for label, backend in (
        ("local", ShardedJsonlBackend(tmp_path / "local.jsonl", num_shards=SHARDS)),
        ("remote", RemoteBackend(server.url, strict=True)),
        ("tiered", TieredBackend(RemoteBackend(server.url, strict=True), auto_flush=False)),
    ):
        keys = [record_key(label, index) for index in range(RECORDS)]
        put_seconds = timed(
            lambda: backend.put_many(label, {key: payload(i) for i, key in enumerate(keys)})
        )
        if label == "tiered":
            backend.flush()
        cold_get = timed(lambda: backend.get_many(label, keys))
        warm_get = timed(lambda: backend.get_many(label, keys))
        clients[label] = backend
        bench_metrics[f"{label}_mput_per_s"] = round(RECORDS / put_seconds, 1)
        bench_metrics[f"{label}_cold_mget_per_s"] = round(RECORDS / cold_get, 1)
        bench_metrics[f"{label}_warm_mget_per_s"] = round(RECORDS / warm_get, 1)
        rows.append(
            [
                label,
                RECORDS,
                round(RECORDS / put_seconds),
                round(RECORDS / cold_get),
                round(RECORDS / warm_get),
            ]
        )
    print()
    print(
        format_table(
            rows,
            headers=["backend", "records", "mputs/s", "cold mgets/s", "warm mgets/s"],
            title="store service throughput (one live server)",
        )
    )
    # Warm tiered reads never touch the socket; remote ones always do.
    remote_warm = timed(lambda: clients["remote"].get_many("remote", [record_key("remote", i) for i in range(RECORDS)]))
    tiered_warm = timed(lambda: clients["tiered"].get_many("tiered", [record_key("tiered", i) for i in range(RECORDS)]))
    assert tiered_warm < remote_warm
    clients["remote"].close()
    clients["tiered"].close()


def test_batched_mput_beats_per_key_puts_over_the_same_socket(server, bench_metrics):
    client = RemoteBackend(server.url, strict=True)
    try:
        single_keys = [record_key("single", index) for index in range(RECORDS)]
        per_key_seconds = timed(
            lambda: [
                client.put("single", key, payload(index))
                for index, key in enumerate(single_keys)
            ]
        )
        batch_records = {
            record_key("batch", index): payload(index) for index in range(RECORDS)
        }
        batch_seconds = timed(lambda: client.put_many("batch", batch_records))

        speedup = per_key_seconds / batch_seconds
        bench_metrics.update(
            {
                "records": RECORDS,
                "per_key_put_seconds": round(per_key_seconds, 6),
                "batched_mput_seconds": round(batch_seconds, 6),
                "mput_speedup": round(speedup, 2),
            }
        )
        print(
            f"\nmput: {RECORDS} records per-key {per_key_seconds * 1000:.1f} ms, "
            f"batched {batch_seconds * 1000:.1f} ms -> {speedup:.1f}x"
        )
        assert speedup >= MPUT_SPEEDUP_FLOOR, (
            f"batched mput only {speedup:.1f}x faster than per-key puts "
            f"(floor {MPUT_SPEEDUP_FLOOR}x)"
        )

        # The read side: one mget round trip vs one GET per key.
        per_key_get = timed(lambda: [client.get("single", key) for key in single_keys])
        batch_get = timed(lambda: client.get_many("single", single_keys))
        bench_metrics["mget_speedup"] = round(per_key_get / batch_get, 2)
        print(
            f"mget: per-key {per_key_get * 1000:.1f} ms, "
            f"batched {batch_get * 1000:.1f} ms -> {per_key_get / batch_get:.1f}x"
        )
        assert batch_get < per_key_get
    finally:
        client.close()
