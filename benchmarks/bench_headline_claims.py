"""Benchmark: the paper's abstract/conclusion headline claims.

"the RTL synthesis results show that our resource sharing and pipelining
can reduce the area and the critical path delay by up to 42.8% and 34.69%
respectively compared to the base architecture and the benchmark evaluation
reveals the performance enhancement up to 35.7%."
"""

from __future__ import annotations

from repro.eval.report import build_report
from repro.synthesis import PAPER_HEADLINE
from repro.utils.tabulate import format_table


def test_headline_claims(benchmark, mapper, timing_model):
    report = benchmark.pedantic(
        build_report,
        kwargs={"mapper": mapper, "timing_model": timing_model, "include_exploration": False},
        rounds=1, iterations=1,
    )
    headline = report.headline
    print()
    print(
        format_table(
            [
                ["max area reduction (%)", headline.max_area_reduction_percent,
                 PAPER_HEADLINE["max_area_reduction_percent"]],
                ["max delay reduction (%)", headline.max_delay_reduction_percent,
                 PAPER_HEADLINE["max_delay_reduction_percent"]],
                ["max performance improvement (%)", headline.max_performance_improvement_percent,
                 PAPER_HEADLINE["max_performance_improvement_percent"]],
            ],
            headers=["claim", "measured", "paper"],
            title="Headline claims, measured vs. paper",
        )
    )
    assert abs(headline.max_area_reduction_percent - 42.8) < 10.0
    assert abs(headline.max_delay_reduction_percent - 34.69) < 8.0
    assert abs(headline.max_performance_improvement_percent - 35.7) < 10.0
