"""Benchmark: regenerate paper Table 1 (PE component synthesis result).

The area and delay of every PE component, with the paper's published
numbers side by side.
"""

from __future__ import annotations

from repro.eval.tables import format_table1, table1_pe_components


def test_table1_pe_components(benchmark):
    rows = benchmark(table1_pe_components)
    print()
    print(format_table1(rows))
    by_name = {row.component: row for row in rows}
    assert by_name["PE"].area_slices == 910
    assert by_name["Array multiplier"].area_ratio_percent > 40
    assert by_name["Array multiplier"].delay_ratio_percent > 70
    for row in rows:
        assert row.area_slices == row.paper_area_slices
        assert row.delay_ns == row.paper_delay_ns
