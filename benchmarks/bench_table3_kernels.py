"""Benchmark: regenerate paper Table 3 (kernel operation sets and mult pressure).

Every kernel is mapped on the base 8x8 architecture; the benchmark reports
its operation set and the peak number of multiplications in a cycle.
"""

from __future__ import annotations

from repro.eval.tables import format_table3, table3_kernels
from repro.kernels import PAPER_TABLE3


def test_table3_kernel_characterisation(benchmark, mapper):
    rows = benchmark.pedantic(table3_kernels, kwargs={"mapper": mapper}, rounds=1, iterations=1)
    print()
    print(format_table3(rows))
    by_name = {row.kernel: row for row in rows}
    assert set(by_name) == set(PAPER_TABLE3)
    # SAD is the only kernel without multiplications (paper: Mult No = 0).
    assert by_name["SAD"].max_multiplications == 0
    for name, row in by_name.items():
        if name != "SAD":
            assert row.max_multiplications > 0
    # Memory bandwidth limits the MAC kernels to the paper's 8 mults/cycle.
    assert by_name["Inner product"].max_multiplications == 8
    assert by_name["MVM"].max_multiplications == 8
    # 2D-FDCT has the highest multiplication pressure, as in the paper.
    assert by_name["2D-FDCT"].max_multiplications == max(
        row.max_multiplications for row in rows
    )
